//! Static catalog of NVIDIA server-GPU spec points.
//!
//! Reproduces the data behind Fig. 1 of the paper (after Desislavov et al.,
//! "Trends in AI inference energy consumption", *Sustainable Computing*
//! 2023): dense FP16 tensor throughput and TDP for successive generations
//! of NVIDIA data-center GPUs, from which the efficiency-vs-speed trend is
//! derived. Values are public spec-sheet numbers (dense, no sparsity).

use crate::Machine;
use serde::Serialize;
use std::fmt;

/// Failure to resolve a name against the static GPU catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// No catalog entry carries this marketing name.
    UnknownGpu(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownGpu(name) => {
                write!(f, "no GPU named {name:?} in the NVIDIA server catalog")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// One GPU spec point.
///
/// Serialize-only: the catalog is static data referencing `&'static str`
/// names, which cannot be materialized by deserialization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Launch year.
    pub year: u32,
    /// Dense FP16 (tensor where available) throughput in TFLOPS.
    pub fp16_tflops: f64,
    /// Board TDP in watts.
    pub tdp_watts: f64,
}

impl GpuSpec {
    /// Speed in GFLOP/s.
    #[inline]
    pub fn speed_gflops(&self) -> f64 {
        self.fp16_tflops * 1000.0
    }

    /// Energy efficiency in GFLOPS/W.
    #[inline]
    pub fn efficiency(&self) -> f64 {
        self.speed_gflops() / self.tdp_watts
    }

    /// Converts the spec point into a scheduler [`Machine`].
    pub fn machine(&self) -> Machine {
        Machine::new(self.speed_gflops(), self.tdp_watts)
            .expect("catalog entries are positive and finite")
    }
}

/// NVIDIA data-center GPUs, Kepler through Hopper, plus the workstation
/// RTX A2000 used in the paper's testbed.
pub const NVIDIA_SERVER_GPUS: [GpuSpec; 18] = [
    GpuSpec {
        name: "Tesla K80",
        year: 2014,
        fp16_tflops: 8.74,
        tdp_watts: 300.0,
    },
    GpuSpec {
        name: "Tesla M40",
        year: 2015,
        fp16_tflops: 7.0,
        tdp_watts: 250.0,
    },
    GpuSpec {
        name: "Tesla P4",
        year: 2016,
        fp16_tflops: 5.5,
        tdp_watts: 75.0,
    },
    GpuSpec {
        name: "Tesla P40",
        year: 2016,
        fp16_tflops: 12.0,
        tdp_watts: 250.0,
    },
    GpuSpec {
        name: "Tesla P100",
        year: 2016,
        fp16_tflops: 21.2,
        tdp_watts: 300.0,
    },
    GpuSpec {
        name: "Tesla V100",
        year: 2017,
        fp16_tflops: 125.0,
        tdp_watts: 300.0,
    },
    GpuSpec {
        name: "Tesla T4",
        year: 2018,
        fp16_tflops: 65.0,
        tdp_watts: 70.0,
    },
    GpuSpec {
        name: "Quadro RTX 8000",
        year: 2018,
        fp16_tflops: 130.5,
        tdp_watts: 295.0,
    },
    GpuSpec {
        name: "A2",
        year: 2021,
        fp16_tflops: 18.0,
        tdp_watts: 60.0,
    },
    GpuSpec {
        name: "A10",
        year: 2021,
        fp16_tflops: 125.0,
        tdp_watts: 150.0,
    },
    GpuSpec {
        name: "A30",
        year: 2021,
        fp16_tflops: 165.0,
        tdp_watts: 165.0,
    },
    GpuSpec {
        name: "A40",
        year: 2021,
        fp16_tflops: 149.7,
        tdp_watts: 300.0,
    },
    GpuSpec {
        name: "A100 40GB",
        year: 2020,
        fp16_tflops: 312.0,
        tdp_watts: 400.0,
    },
    GpuSpec {
        name: "A100 80GB",
        year: 2021,
        fp16_tflops: 312.0,
        tdp_watts: 400.0,
    },
    GpuSpec {
        name: "L4",
        year: 2023,
        fp16_tflops: 121.0,
        tdp_watts: 72.0,
    },
    GpuSpec {
        name: "L40",
        year: 2022,
        fp16_tflops: 181.0,
        tdp_watts: 300.0,
    },
    GpuSpec {
        name: "H100 PCIe",
        year: 2022,
        fp16_tflops: 756.0,
        tdp_watts: 350.0,
    },
    GpuSpec {
        name: "RTX A2000",
        year: 2021,
        fp16_tflops: 63.9,
        tdp_watts: 70.0,
    },
];

/// Looks up a catalog entry by marketing name.
pub fn find_gpu(name: &str) -> Result<&'static GpuSpec, CatalogError> {
    NVIDIA_SERVER_GPUS
        .iter()
        .find(|s| s.name == name)
        .ok_or_else(|| CatalogError::UnknownGpu(name.to_string()))
}

/// Ordinary least-squares fit of efficiency (GFLOPS/W) against speed
/// (TFLOPS) over a set of spec points: `efficiency ≈ slope · tflops +
/// intercept`. Returns `(slope, intercept, r2)`.
///
/// Fig. 1's observation is that efficiency improves roughly linearly with
/// hardware speed; the catalog reproduces a clearly positive slope.
pub fn efficiency_speed_trend(specs: &[GpuSpec]) -> (f64, f64, f64) {
    assert!(specs.len() >= 2, "need at least two points for a trend");
    let n = specs.len() as f64;
    let xs: Vec<f64> = specs.iter().map(|s| s.fp16_tflops).collect();
    let ys: Vec<f64> = specs.iter().map(|s| s.efficiency()).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0
    };
    (slope, intercept, r2)
}

/// The park used in the paper's Fig. 6 workload-balancing study: machine 1
/// is slower but more energy efficient (2 TFLOPS, 80 GFLOPS/W) than machine
/// 2 (5 TFLOPS, 70 GFLOPS/W).
pub fn fig6_two_machine_park() -> crate::MachinePark {
    crate::MachinePark::new(vec![
        Machine::from_efficiency(2000.0, 80.0).expect("valid"),
        Machine::from_efficiency(5000.0, 70.0).expect("valid"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_entries_are_valid_machines() {
        for spec in NVIDIA_SERVER_GPUS {
            let m = spec.machine();
            assert!(m.speed() > 0.0, "{}", spec.name);
            assert!(m.efficiency() > 0.0, "{}", spec.name);
        }
    }

    #[test]
    fn efficiency_improves_with_speed() {
        let (slope, _intercept, r2) = efficiency_speed_trend(&NVIDIA_SERVER_GPUS);
        assert!(slope > 0.0, "Fig. 1 trend: efficiency grows with speed");
        assert!(r2 > 0.5, "trend should explain most variance, r2 = {r2}");
    }

    #[test]
    fn generational_efficiency_ordering() -> Result<(), CatalogError> {
        // Each generation is more efficient than Kepler.
        let k80 = find_gpu("Tesla K80")?.efficiency();
        for name in ["Tesla V100", "A100 40GB", "H100 PCIe", "L4"] {
            assert!(find_gpu(name)?.efficiency() > k80, "{name}");
        }
        // Hopper beats Ampere flagship.
        assert!(find_gpu("H100 PCIe")?.efficiency() > find_gpu("A100 80GB")?.efficiency());
        Ok(())
    }

    #[test]
    fn find_gpu_rejects_unknown_names() {
        assert_eq!(
            find_gpu("GTX 9999"),
            Err(CatalogError::UnknownGpu("GTX 9999".to_string()))
        );
    }

    #[test]
    fn fig6_park_matches_paper() {
        let p = fig6_two_machine_park();
        assert_eq!(p.len(), 2);
        assert!((p[0].speed() - 2000.0).abs() < 1e-9);
        assert!((p[0].efficiency() - 80.0).abs() < 1e-9);
        assert!((p[1].speed() - 5000.0).abs() < 1e-9);
        assert!((p[1].efficiency() - 70.0).abs() < 1e-9);
        assert!(p[0].efficiency() > p[1].efficiency());
        assert!(p[0].speed() < p[1].speed());
    }

    #[test]
    fn trend_on_two_points_is_exact() {
        let specs = [
            GpuSpec {
                name: "a",
                year: 2000,
                fp16_tflops: 1.0,
                tdp_watts: 100.0,
            },
            GpuSpec {
                name: "b",
                year: 2001,
                fp16_tflops: 2.0,
                tdp_watts: 100.0,
            },
        ];
        let (slope, intercept, r2) = efficiency_speed_trend(&specs);
        // efficiencies: 10 and 20 GFLOPS/W at 1 and 2 TFLOPS.
        assert!((slope - 10.0).abs() < 1e-9);
        assert!((intercept - 0.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
    }
}
