//! DVFS-style machines: a catalog of (speed, power) operating points.
//!
//! Following Agrawal & Rao (*Scheduling Under Power and Energy
//! Constraints*), a speed-scaling machine exposes several discrete
//! operating points — each an ordinary [`Machine`] spec point — and the
//! scheduler picks one per stage. The solvers in `dsct_core::staged`
//! run every stage at the machine's *min-energy-per-work* point (the
//! maximum-efficiency point, `E = s / P`), with ties broken
//! deterministically: higher speed wins, then the lower catalog index.
//! The staged oracle only requires catalog *membership*, so alternative
//! point policies stay verifiable.

use crate::{Machine, MachineError, MachinePark};
use serde::{Deserialize, Serialize};

/// A speed-scaling machine: a non-empty catalog of (speed, power)
/// operating points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsMachine {
    points: Vec<Machine>,
}

impl DvfsMachine {
    /// Builds a machine from its operating-point catalog.
    ///
    /// Errors with [`MachineError::NoOperatingPoints`] on an empty
    /// catalog; the points themselves were validated at construction.
    pub fn new(points: Vec<Machine>) -> Result<Self, MachineError> {
        if points.is_empty() {
            return Err(MachineError::NoOperatingPoints);
        }
        Ok(Self { points })
    }

    /// A fixed-frequency machine: a single operating point (the flat
    /// model's machine, embedded).
    pub fn fixed(point: Machine) -> Self {
        Self {
            points: vec![point],
        }
    }

    /// The operating-point catalog, in construction order.
    #[inline]
    pub fn points(&self) -> &[Machine] {
        &self.points
    }

    /// Number of operating points.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// The operating point at catalog index `p`, if any.
    #[inline]
    pub fn point(&self, p: usize) -> Option<Machine> {
        self.points.get(p).copied()
    }

    /// Index of the min-energy-per-work operating point: maximum
    /// efficiency `s/P`, ties broken by higher speed, then by the lower
    /// catalog index — all comparisons via `total_cmp`, so the choice is
    /// deterministic for any float inputs.
    pub fn selected_index(&self) -> usize {
        let mut best = 0usize;
        for (p, cand) in self.points.iter().enumerate().skip(1) {
            let cur = &self.points[best];
            let by_eff = cand.efficiency().total_cmp(&cur.efficiency());
            let by_speed = cand.speed().total_cmp(&cur.speed());
            if by_eff.then(by_speed).is_gt() {
                best = p;
            }
        }
        best
    }

    /// The min-energy-per-work operating point itself.
    #[inline]
    pub fn selected(&self) -> Machine {
        self.points[self.selected_index()]
    }

    /// Whether the catalog contains a point with exactly these
    /// (bit-equal) speed and power values.
    pub fn contains(&self, speed: f64, power: f64) -> bool {
        self.points.iter().any(|m| {
            m.speed().to_bits() == speed.to_bits() && m.power().to_bits() == power.to_bits()
        })
    }

    /// Whether point `p` is dominated: some other point is at least as
    /// fast *and* at least as efficient (strictly better in one, or
    /// equal on both and earlier in the catalog). A dominated point is
    /// never selected, so adding one cannot change any solution.
    pub fn is_dominated(&self, p: usize) -> bool {
        let target = &self.points[p];
        self.points.iter().enumerate().any(|(q, other)| {
            if q == p {
                return false;
            }
            let speed = other.speed().total_cmp(&target.speed());
            let eff = other.efficiency().total_cmp(&target.efficiency());
            if speed.is_lt() || eff.is_lt() {
                return false;
            }
            speed.is_gt() || eff.is_gt() || q < p
        })
    }

    /// Maximum speed over all operating points (the bound used for
    /// stage-release-adjusted deadlines: no stage can finish faster).
    pub fn fastest_speed(&self) -> f64 {
        self.points
            .iter()
            .map(Machine::speed)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// A park of speed-scaling machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsPark {
    machines: Vec<DvfsMachine>,
}

impl DvfsPark {
    /// Builds a park; errors with [`MachineError::EmptyPark`] when no
    /// machines are supplied (unlike [`MachinePark::new`], which panics —
    /// staged instances are often built from untrusted corpus files).
    pub fn new(machines: Vec<DvfsMachine>) -> Result<Self, MachineError> {
        if machines.is_empty() {
            return Err(MachineError::EmptyPark);
        }
        Ok(Self { machines })
    }

    /// Embeds a flat park: every machine becomes a single-point catalog.
    pub fn from_park(park: &MachinePark) -> Self {
        Self {
            machines: park
                .machines()
                .iter()
                .copied()
                .map(DvfsMachine::fixed)
                .collect(),
        }
    }

    /// Number of machines.
    #[inline]
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the park is empty (never true for a constructed park).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The machines in park order.
    #[inline]
    pub fn machines(&self) -> &[DvfsMachine] {
        &self.machines
    }

    /// Machine `r`, if any.
    #[inline]
    pub fn get(&self, r: usize) -> Option<&DvfsMachine> {
        self.machines.get(r)
    }

    /// The flat park formed by each machine's selected (min-energy-
    /// per-work) operating point — the lowering the staged solvers run
    /// the flat algorithms on.
    pub fn selected_park(&self) -> MachinePark {
        MachinePark::new(self.machines.iter().map(DvfsMachine::selected).collect())
    }

    /// Maximum speed over every machine's catalog.
    pub fn fastest_speed(&self) -> f64 {
        self.machines
            .iter()
            .map(DvfsMachine::fastest_speed)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(speed: f64, power: f64) -> Machine {
        Machine::new(speed, power).unwrap()
    }

    #[test]
    fn empty_catalog_is_rejected() {
        assert_eq!(
            DvfsMachine::new(vec![]),
            Err(MachineError::NoOperatingPoints)
        );
        assert_eq!(DvfsPark::new(vec![]), Err(MachineError::EmptyPark));
    }

    #[test]
    fn selection_maximizes_efficiency() {
        // Efficiencies: 20, 50, 25 → index 1.
        let m = DvfsMachine::new(vec![
            pt(2000.0, 100.0),
            pt(5000.0, 100.0),
            pt(2500.0, 100.0),
        ])
        .unwrap();
        assert_eq!(m.selected_index(), 1);
        assert_eq!(m.selected(), pt(5000.0, 100.0));
    }

    #[test]
    fn efficiency_ties_break_by_speed_then_index() {
        // Same efficiency (10), speeds 1000 < 2000: faster wins.
        let m = DvfsMachine::new(vec![pt(1000.0, 100.0), pt(2000.0, 200.0)]).unwrap();
        assert_eq!(m.selected_index(), 1);
        // Bit-identical points: the first catalog entry wins.
        let m = DvfsMachine::new(vec![pt(1000.0, 100.0), pt(1000.0, 100.0)]).unwrap();
        assert_eq!(m.selected_index(), 0);
    }

    #[test]
    fn dominated_points_are_never_selected() {
        let m = DvfsMachine::new(vec![
            pt(5000.0, 100.0), // eff 50
            pt(4000.0, 100.0), // slower, same power: dominated
            pt(5000.0, 120.0), // same speed, more power: dominated
        ])
        .unwrap();
        assert!(!m.is_dominated(0));
        assert!(m.is_dominated(1));
        assert!(m.is_dominated(2));
        assert_eq!(m.selected_index(), 0);
        // A faster-but-hungrier point is NOT dominated, yet still loses
        // the min-energy-per-work selection.
        let m = DvfsMachine::new(vec![pt(5000.0, 100.0), pt(8000.0, 400.0)]).unwrap();
        assert!(!m.is_dominated(1));
        assert_eq!(m.selected_index(), 0);
    }

    #[test]
    fn catalog_membership_is_bit_exact() {
        let m = DvfsMachine::new(vec![pt(5000.0, 100.0)]).unwrap();
        assert!(m.contains(5000.0, 100.0));
        assert!(!m.contains(5000.0, 100.0 + 1e-12));
        assert!(!m.contains(4999.0, 100.0));
    }

    #[test]
    fn park_lowering_picks_selected_points() {
        let park = DvfsPark::new(vec![
            DvfsMachine::new(vec![pt(2000.0, 25.0), pt(3000.0, 200.0)]).unwrap(),
            DvfsMachine::fixed(pt(5000.0, 70.0)),
        ])
        .unwrap();
        let flat = park.selected_park();
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.get(0), pt(2000.0, 25.0));
        assert_eq!(flat.get(1), pt(5000.0, 70.0));
        assert_eq!(park.fastest_speed(), 5000.0);
    }

    #[test]
    fn from_park_round_trips() {
        let flat = MachinePark::new(vec![pt(2000.0, 25.0), pt(5000.0, 70.0)]);
        let dvfs = DvfsPark::from_park(&flat);
        assert_eq!(dvfs.len(), 2);
        assert_eq!(dvfs.selected_park(), flat);
    }
}
