#![warn(missing_docs)]

//! Machine and GPU substrate for the DSCT-EA scheduler.
//!
//! Machines are characterized by their speed `s_r` (GFLOP/s), power draw
//! `P_r` (W), and energy efficiency `E_r = s_r / P_r` (GFLOP/J, equivalently
//! GFLOPS/W) — the three quantities the DSCT-EA problem formulation uses.
//!
//! The [`catalog`] module ships a static table of published NVIDIA
//! server-GPU spec points reproducing the efficiency-vs-speed trend of
//! Fig. 1 of the paper (after Desislavov et al., *Sustainable Computing*
//! 2023), and [`gen`] provides the uniform samplers the paper's experiments
//! draw machines from (speeds 1–20 TFLOPS, efficiencies 5–60 GFLOPS/W).
//!
//! [`DvfsMachine`] and [`DvfsPark`] extend the model with DVFS-style
//! speed scaling: a machine exposes several (speed, power) operating
//! points and the staged solvers pick the min-energy-per-work point per
//! stage (DESIGN §17, after Agrawal & Rao).

pub mod catalog;
mod dvfs;
pub mod gen;
mod machine;
mod park;

pub use dvfs::{DvfsMachine, DvfsPark};
pub use machine::{Machine, MachineError};
pub use park::MachinePark;
