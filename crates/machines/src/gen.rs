//! Random machine-park samplers matching the paper's experimental setup:
//! speeds uniform in 1–20 TFLOPS and energy efficiencies uniform in
//! 5–60 GFLOPS/W (values from the Desislavov et al. survey).

use crate::{Machine, MachinePark};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Sampling ranges for random machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSampler {
    /// Speed range in GFLOP/s (inclusive bounds).
    pub speed_gflops: (f64, f64),
    /// Efficiency range in GFLOPS/W (inclusive bounds).
    pub efficiency: (f64, f64),
}

impl MachineSampler {
    /// The paper's ranges: 1–20 TFLOPS, 5–60 GFLOPS/W.
    pub const PAPER: MachineSampler = MachineSampler {
        speed_gflops: (1_000.0, 20_000.0),
        efficiency: (5.0, 60.0),
    };

    /// Samples one machine.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Machine {
        let (s_lo, s_hi) = self.speed_gflops;
        let (e_lo, e_hi) = self.efficiency;
        assert!(s_lo > 0.0 && s_hi >= s_lo, "invalid speed range");
        assert!(e_lo > 0.0 && e_hi >= e_lo, "invalid efficiency range");
        let speed = rng.gen_range(s_lo..=s_hi);
        let eff = rng.gen_range(e_lo..=e_hi);
        Machine::from_efficiency(speed, eff).expect("ranges are positive")
    }

    /// Samples a park of `m` machines.
    pub fn sample_park<R: Rng + ?Sized>(&self, rng: &mut R, m: usize) -> MachinePark {
        assert!(m >= 1, "need at least one machine");
        MachinePark::new((0..m).map(|_| self.sample(rng)).collect())
    }
}

impl Default for MachineSampler {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn samples_stay_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let s = MachineSampler::PAPER;
        for _ in 0..200 {
            let m = s.sample(&mut rng);
            assert!((1_000.0..=20_000.0).contains(&m.speed()));
            assert!((5.0..=60.0).contains(&m.efficiency()));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = MachineSampler::PAPER;
        let a = s.sample_park(&mut ChaCha8Rng::seed_from_u64(42), 5);
        let b = s.sample_park(&mut ChaCha8Rng::seed_from_u64(42), 5);
        assert_eq!(a, b);
        let c = s.sample_park(&mut ChaCha8Rng::seed_from_u64(43), 5);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        MachineSampler::PAPER.sample_park(&mut rng, 0);
    }
}
