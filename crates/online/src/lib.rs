#![warn(missing_docs)]

//! Online arrival-driven scheduling service for DSCT-EA.
//!
//! Every solver in [`dsct_core`] is clairvoyant: the whole instance is
//! known before `solve()` is called. This crate serves the *online*
//! problem the paper names as its open extension (§7): compressible
//! tasks arrive over time, and the service maintains a running schedule
//! under a global energy budget by re-solving the remaining instance on
//! each arrival over a rolling horizon.
//!
//! Pieces:
//!
//! - [`OnlineService`] — the arrival loop. Each arrival advances the
//!   simulated clock (committing dispatches whose start time has
//!   passed; started tasks never migrate), runs the admission policy,
//!   and re-plans the pending pool as a residual instance
//!   ([`dsct_core::residual`]) through a [`dsct_core::replan::Replanner`]
//!   — warm-started from the incumbent plan's fractional profile under
//!   [`ReplanStrategy::WarmStart`], or answered by fingerprint-keyed
//!   cache replays, value-only estimates, and checkpoint membership
//!   deltas under [`ReplanStrategy::Incremental`] (adopted plans stay
//!   bit-identical to the cold pipeline's);
//! - [`AdmissionPolicy`] — pluggable admission: [`AdmissionPolicy::AdmitAll`],
//!   [`AdmissionPolicy::RejectIfInfeasible`] (protects the planned
//!   accuracy of already-admitted tasks), and
//!   [`AdmissionPolicy::DegradeToFit`] (admits whenever compressing the
//!   admitted tasks down their concave PWL curves nets a total-accuracy
//!   gain);
//! - [`EnergyLedger`] — committed vs. spent vs. remaining budget. On
//!   dispatch the *planned* energy is committed; on completion the
//!   *actual* energy (after speed jitter, same model as [`dsct_exec`])
//!   settles, so runtime overruns shrink the budget later re-plans see;
//! - [`Disruption`] — mid-run machine failures, persistent speed
//!   degradations, and budget shocks injected via
//!   [`OnlineService::inject`], with recovery by residual re-solve
//!   excluding dead machines (the `dsct-chaos` crate drives these
//!   deterministically);
//! - [`replay`] — deterministic replay of a [`dsct_workload::ArrivalTrace`],
//!   producing a [`dsct_exec::ExecutionTrace`]-based [`OnlineReport`].

mod admission;
mod error;
mod ledger;
mod service;

pub use admission::{AdmissionPolicy, Decision};
pub use error::OnlineError;
pub use ledger::EnergyLedger;
pub use service::{
    replay, Disruption, OnlineConfig, OnlineReport, OnlineService, OnlineSummary, ReplanStats,
    ReplanStrategy, ReplayConfig,
};
