//! The arrival loop: rolling-horizon re-optimization with dispatch
//! commitment, admission control, and ledger-tracked energy.
//!
//! # Model
//!
//! The service owns a simulated clock driven by submissions (arrival
//! times must be non-decreasing). Between two arrivals the incumbent
//! plan governs: each machine runs its assigned pending tasks
//! back-to-back in residual-deadline (EDF) order, and every dispatch
//! whose start time falls strictly before the next arrival is
//! *committed* — the task leaves the pending pool, its planned energy is
//! committed to the ledger, and it never migrates. At the arrival the
//! pending pool (committed tasks excluded) is re-planned as a residual
//! instance ([`dsct_core::residual`]): deadlines shift to `d_j − now`,
//! the budget shrinks to the ledger's remaining joules, and the re-solve
//! goes through a [`Replanner`](dsct_core::replan::Replanner) —
//! warm-started, under [`ReplanStrategy::WarmStart`], from the
//! incumbent's fractional profile restricted to still-pending tasks;
//! under [`ReplanStrategy::Incremental`] adopted plans replay the cold
//! pipeline (or its fingerprint-keyed cache) bit for bit, while the
//! tentative admission evaluations go through the replanner's value-only
//! estimates and checkpoint membership deltas.
//!
//! Machine availability is restored at plan-materialization time: tasks
//! landing on a still-busy machine are cut at their *absolute* deadline
//! (the same phase-2 cut as `DSCT-EA-APPROX`), which only shortens
//! processing times and therefore never exceeds the solved plan's
//! energy. Runtime speed jitter follows the [`dsct_exec`] model — the
//! planned allocation is a work target, a slow execution overruns and is
//! compressed or dropped per [`OverrunPolicy`] — and the jitter factor
//! of a task depends only on `(jitter_seed, id)`, never on how many
//! re-plans happened, so replays are deterministic.
//!
//! # Disruptions
//!
//! [`OnlineService::inject`] applies a [`Disruption`] at a point on the
//! service clock: a permanent machine failure, a persistent
//! (multiplicative) speed degradation, or a budget shock. Recovery is a
//! residual re-solve excluding dead machines on degraded speeds. A task
//! in flight on a failing machine is cut at the failure instant: the
//! ledger settles the joules actually burned (`P_r · elapsed`), the
//! trace records a [`EventKind::Failed`] terminal event, and — under
//! [`OverrunPolicy::Compress`] — the work already done is kept while the
//! *remaining* work returns to the pending pool as a shifted residual
//! accuracy curve `a_res(f) = a(f_done + f)`, so a later plan can finish
//! the task elsewhere. Under [`OverrunPolicy::Drop`] the partial work is
//! discarded (the joules are still paid). Disruptions are
//! dispatch-granular: a degradation affects dispatches starting at or
//! after its injection time, never a run already in progress.

use crate::admission::{AdmissionPolicy, Decision};
use crate::error::OnlineError;
use crate::ledger::EnergyLedger;
use dsct_accuracy::PwlAccuracy;
use dsct_core::oracle::{self, Claims};
use dsct_core::problem::{Instance, Task};
use dsct_core::profile::EnergyProfile;
use dsct_core::replan::{Replanner, DEFAULT_CACHE_CAPACITY};
use dsct_core::residual::{residual_instance, ResidualItem};
use dsct_core::solver::{ApproxSolver, Solution};
use dsct_core::EPS_TIME;
use dsct_exec::{
    EventKind, ExecError, ExecutionConfig, ExecutionTrace, OverrunPolicy, TaskOutcome, TraceEvent,
};
use dsct_machines::{Machine, MachinePark};
use dsct_workload::{ArrivalTrace, OnlineTask};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashSet, VecDeque};

/// A disruption injected into the service clock (see
/// [`OnlineService::inject`]). Disruptions are the online counterpart of
/// [`dsct_exec::fault`]'s offline fault events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Disruption {
    /// Machine `machine` fails permanently: any task in flight on it is
    /// cut at the failure instant and the machine never appears in a
    /// later plan.
    MachineFailure {
        /// Index of the failing machine.
        machine: usize,
    },
    /// Machine `machine` permanently slows to `factor` of its current
    /// speed (`0 < factor <= 1`, multiplicatively composable). Power
    /// draw is unchanged, so degradation wastes energy per unit work.
    SpeedDegradation {
        /// Index of the degrading machine.
        machine: usize,
        /// Multiplicative speed factor in `(0, 1]`.
        factor: f64,
    },
    /// The global budget shifts by `delta` joules (negative = cut),
    /// clamping at zero; see [`EnergyLedger::apply_shock`].
    BudgetShock {
        /// Signed budget change in joules.
        delta: f64,
    },
}

pub use dsct_core::replan::{ReplanStats, ReplanStrategy};

/// Configuration of an [`OnlineService`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Admission policy.
    pub policy: AdmissionPolicy,
    /// Re-solve strategy.
    pub replan: ReplanStrategy,
    /// Capacity bound of the replanner's fingerprint-keyed stores (full
    /// plans and value estimates are bounded separately; see
    /// [`dsct_core::replan`]); `0` disables caching. Only
    /// [`ReplanStrategy::Incremental`] reads the stores.
    pub replan_cache: usize,
    /// Multiplicative speed-jitter half-width in `[0, 1)` (the
    /// [`dsct_exec`] model; `0.0` = deterministic nominal speeds).
    pub speed_jitter: f64,
    /// Seed for the per-task jitter draws.
    pub jitter_seed: u64,
    /// Deadline-overrun handling at dispatch time.
    pub overrun: OverrunPolicy,
    /// Internal-parallelism cap for the re-solves (the profile search's
    /// gate threads); `1` keeps the service single-threaded, which is
    /// what a harness running many replays in parallel wants. Results
    /// never depend on this — only wall-clock does.
    pub solver_parallelism: usize,
    /// Run every residual solution through the invariant oracle
    /// ([`dsct_core::oracle`], with [`Claims::approx`]) before adopting
    /// it. Defaults to on under `debug_assertions`, mirroring
    /// [`dsct_core::solver::SolverOptions`]; a violation panics with a
    /// pinpointed report and dumps the residual instance.
    #[serde(default = "default_check_invariants")]
    pub check_invariants: bool,
}

fn default_check_invariants() -> bool {
    cfg!(debug_assertions)
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            policy: AdmissionPolicy::AdmitAll,
            replan: ReplanStrategy::WarmStart,
            replan_cache: DEFAULT_CACHE_CAPACITY,
            speed_jitter: 0.0,
            jitter_seed: 0,
            overrun: OverrunPolicy::Compress,
            solver_parallelism: 1,
            check_invariants: default_check_invariants(),
        }
    }
}

impl OnlineConfig {
    fn execution_config(&self) -> ExecutionConfig {
        ExecutionConfig {
            speed_jitter: self.speed_jitter,
            seed: self.jitter_seed,
            overrun: self.overrun,
        }
    }
}

/// Deterministic aggregate of one service run (the byte-comparable
/// payload of the determinism contract: two replays of the same trace
/// and configuration produce equal summaries, bit for bit, regardless
/// of solver parallelism).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineSummary {
    /// Tasks submitted.
    pub arrivals: usize,
    /// Tasks admitted to the pending pool.
    pub admitted: usize,
    /// Tasks turned away by the admission policy.
    pub rejected: usize,
    /// Admitted tasks whose deadline passed before any dispatch.
    pub expired: usize,
    /// Admitted tasks never dispatched (plans allocated them nothing).
    pub starved: usize,
    /// Tasks actually dispatched to a machine.
    pub dispatched: usize,
    /// Re-plans adopted as the incumbent.
    pub replans: usize,
    /// Total tentative/re-plan evaluations: one per incumbent re-plan
    /// plus one per gated admission evaluation, whichever replanner path
    /// (full solve, value estimate, or checkpoint delta bound) answered
    /// it — so the count is strategy-independent by construction.
    pub solves: usize,
    /// Realized total accuracy `Σ_j a_j(work_j)` over **all** arrivals
    /// (rejected/expired/starved tasks contribute their zero-work
    /// accuracy).
    pub total_accuracy: f64,
    /// Cumulative planned energy committed at dispatch time (J).
    pub committed_energy: f64,
    /// Realized (settled) energy (J).
    pub spent_energy: f64,
    /// The global budget `B` (J) at the end of the run (after any
    /// [`Disruption::BudgetShock`]).
    pub budget: f64,
    /// Completion time of the last dispatched task.
    pub makespan: f64,
    /// Dispatched tasks cut short by an injected machine failure.
    pub failures: usize,
}

/// Everything a finished service run reports.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Execution trace in [`dsct_exec`] vocabulary: `tasks` is indexed
    /// by ascending task id (dense `0..n` ids from
    /// [`dsct_workload::generate_arrivals`] line up with the index),
    /// events are chronological, never-served tasks carry a `Dropped`
    /// event with machine `usize::MAX`.
    pub trace: ExecutionTrace,
    /// Task id of each `trace.tasks` entry, in the same (ascending id)
    /// order. Redundant for dense `0..n` traces; the sharded server
    /// needs it because each shard sees a sparse id subset.
    pub task_ids: Vec<u64>,
    /// Admission decision per submitted task, in submission order.
    pub decisions: Vec<(u64, Decision)>,
    /// The deterministic summary.
    pub summary: OnlineSummary,
    /// Final ledger state.
    pub ledger: EnergyLedger,
    /// The replanner's path counters (cache hits, estimates, delta
    /// bounds, fallbacks). Diagnostics only — deliberately outside
    /// [`OnlineSummary`], so the byte-comparable digest stays identical
    /// across [`ReplanStrategy`] arms.
    pub replan: ReplanStats,
}

/// The incumbent plan: an `ApproxSolver` solution of the residual
/// instance built at `time`, plus the residual-index → task-id mapping.
struct Plan {
    time: f64,
    task_ids: Vec<u64>,
    /// `machine_ids[r_sub]` is the original park index of the solved
    /// sub-park's machine `r_sub` (identity while no machine has
    /// failed).
    machine_ids: Vec<usize>,
    approx: dsct_core::approx::ApproxSolution,
}

/// One materialized (but not yet committed) dispatch.
#[derive(Debug, Clone, Copy)]
struct Queued {
    id: u64,
    duration: f64,
}

/// A committed dispatch awaiting ledger settlement at its completion.
/// `seq` is the dispatch sequence number — failure recovery cancels a
/// pending settlement by `seq`, never by task id, because a task cut by
/// a failure can be re-dispatched and own a second live settlement.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Settle {
    time: f64,
    id: u64,
    seq: u64,
    planned_energy: f64,
    actual_energy: f64,
}

impl Eq for Settle {}
impl PartialOrd for Settle {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Settle {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.id.cmp(&self.id))
    }
}

/// A committed dispatch currently occupying a machine — everything
/// failure recovery needs to cut it at an arbitrary instant.
#[derive(Debug, Clone)]
struct InFlight {
    /// Dispatch sequence number (keys the settlement cancellation).
    seq: u64,
    /// Original park index of the machine running the task.
    machine: usize,
    start: f64,
    completion: f64,
    /// Effective work rate delivered (GFLOP/s; zero for a dropped
    /// overrun, which occupies the machine without doing work).
    rate: f64,
    power: f64,
    planned_energy: f64,
    /// The jitter factor reported in the outcome.
    factor: f64,
    /// Work and energy carried from earlier cut runs of the same task.
    prior_work: f64,
    prior_energy: f64,
    /// Index of the terminal trace event this dispatch pushed, so a cut
    /// can rewrite it to [`EventKind::Failed`] in place.
    event_idx: usize,
    /// The pooled task as dispatched (its accuracy curve is already
    /// residual when earlier runs were cut).
    task: OnlineTask,
}

/// Shifts a concave accuracy curve left by `done` GFLOP of completed
/// work: `a_res(f) = a(done + f)`, the curve a failure remnant re-enters
/// the pool with. Shifting preserves concavity and monotonicity; the
/// `max(a0)` clamp absorbs interpolation round-off at the new origin.
/// Returns `None` when nothing worth re-planning remains.
fn shift_accuracy(acc: &PwlAccuracy, done: f64) -> Option<PwlAccuracy> {
    if done <= 0.0 {
        return Some(acc.clone());
    }
    let a0 = acc.eval(done);
    if acc.a_max() - a0 <= 1e-12 {
        return None;
    }
    let mut points = vec![(0.0, a0)];
    for (&f, &a) in acc.breakpoints().iter().zip(acc.values()) {
        if f > done + 1e-9 {
            points.push((f - done, a.max(a0)));
        }
    }
    if points.len() < 2 {
        return None;
    }
    PwlAccuracy::new(&points).ok()
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The online scheduling service. See the module docs for the model.
pub struct OnlineService {
    cfg: OnlineConfig,
    park: MachinePark,
    ledger: EnergyLedger,
    now: f64,
    pool: Vec<OnlineTask>,
    plan: Option<Plan>,
    plan_dirty: bool,
    queues: Vec<VecDeque<Queued>>,
    free_at: Vec<f64>,
    settle: BinaryHeap<Settle>,
    outcomes: BTreeMap<u64, TaskOutcome>,
    decisions: Vec<(u64, Decision)>,
    events: Vec<TraceEvent>,
    replanner: Replanner,
    /// Same-state probe memo ([`ReplanStrategy::Incremental`] only):
    /// exact tentative values of gated evaluations against the *current*
    /// service state, keyed by the candidate's structural words and
    /// cleared on any mutation of pool, clock, ledger, park, or plan.
    /// Lets a repeated candidate skip residual construction entirely —
    /// the per-arrival cost of a memoized rejection is independent of
    /// the pool size.
    probe_memo: Vec<(Vec<u64>, f64, f64)>,
    /// Memoized [`Self::baseline_value`] for the same lifetime as
    /// `probe_memo` (Incremental only; bitwise what recomputation gives).
    baseline_memo: Option<f64>,
    /// Probe-memo hits, folded into [`ReplanStats::memo_hits`].
    memo_hits: u64,
    replans: usize,
    solves: usize,
    expired: usize,
    starved: usize,
    dispatched: usize,
    committed_energy: f64,
    alive: Vec<bool>,
    degrade: Vec<f64>,
    inflight: BTreeMap<u64, InFlight>,
    cancelled: HashSet<u64>,
    carry: BTreeMap<u64, (f64, f64)>,
    dispatch_seq: u64,
    failures: usize,
}

impl OnlineService {
    /// Creates a service over a machine park and a global energy budget.
    /// Fails with [`OnlineError::Exec`] when the jitter model is invalid
    /// (`speed_jitter` outside `[0, 1)`) and [`OnlineError::InvalidBudget`]
    /// for a NaN, infinite, or negative budget. A zero budget is *valid*
    /// — a shard can start broke and borrow later — the service then
    /// rejects or starves everything until the ledger sees joules.
    pub fn new(park: MachinePark, budget: f64, cfg: OnlineConfig) -> Result<Self, OnlineError> {
        cfg.execution_config().validate()?;
        if !(budget.is_finite() && budget >= 0.0) {
            return Err(OnlineError::InvalidBudget(budget));
        }
        let m = park.len();
        let mut replanner = Replanner::new(ApproxSolver::new(), cfg.replan, cfg.replan_cache);
        replanner.set_parallelism_budget(cfg.solver_parallelism);
        Ok(Self {
            cfg,
            ledger: EnergyLedger::new(budget),
            now: 0.0,
            pool: Vec::new(),
            plan: None,
            plan_dirty: false,
            queues: vec![VecDeque::new(); m],
            free_at: vec![0.0; m],
            settle: BinaryHeap::new(),
            outcomes: BTreeMap::new(),
            decisions: Vec::new(),
            events: Vec::new(),
            replanner,
            probe_memo: Vec::new(),
            baseline_memo: None,
            memo_hits: 0,
            replans: 0,
            solves: 0,
            expired: 0,
            starved: 0,
            dispatched: 0,
            committed_energy: 0.0,
            alive: vec![true; m],
            degrade: vec![1.0; m],
            inflight: BTreeMap::new(),
            cancelled: HashSet::new(),
            carry: BTreeMap::new(),
            dispatch_seq: 0,
            failures: 0,
            park,
        })
    }

    /// Creates a service over a bare machine slice, as shard extraction
    /// hands them out. Unlike [`MachinePark::new`] (which panics), an
    /// empty slice is a typed [`OnlineError::EmptyPark`] — a shard count
    /// exceeding the machine count produces empty slices routinely.
    pub fn from_machines(
        machines: Vec<Machine>,
        budget: f64,
        cfg: OnlineConfig,
    ) -> Result<Self, OnlineError> {
        if machines.is_empty() {
            return Err(OnlineError::EmptyPark);
        }
        Self::new(MachinePark::new(machines), budget, cfg)
    }

    /// The current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The energy ledger.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Admitted tasks currently awaiting dispatch.
    pub fn pending(&self) -> usize {
        self.pool.len()
    }

    /// The replanner's path counters so far (cache hits, estimates,
    /// delta bounds, fallbacks). The sharded server snapshots these at
    /// shard-kill time to attribute a dead cell's replanning history.
    pub fn replan_stats(&self) -> ReplanStats {
        let mut stats = self.replanner.stats();
        stats.memo_hits = self.memo_hits;
        stats
    }

    /// Bulk-admits `tasks` (arrival order, non-decreasing arrivals)
    /// without tentative solves, bypassing the admission policy — the
    /// semantics of an [`AdmissionPolicy::AdmitAll`] batch regardless of
    /// the configured policy. Benchmark and test scaffolding for
    /// building a standing pool in one call: the pool re-plans lazily on
    /// the next clock advance or gated arrival, exactly like a
    /// same-timestamp `AdmitAll` burst. Dead-on-arrival tasks are
    /// rejected as in [`Self::try_submit`]; validation errors abort the
    /// batch at the offending task.
    pub fn preload(&mut self, tasks: &[OnlineTask]) -> Result<(), OnlineError> {
        for task in tasks {
            for (field, value) in [("arrival", task.arrival), ("deadline", task.deadline)] {
                if !value.is_finite() {
                    return Err(OnlineError::InvalidTask {
                        id: task.id,
                        field,
                        value,
                    });
                }
            }
            if task.arrival < self.now - EPS_TIME {
                return Err(OnlineError::NonMonotoneClock {
                    at: task.arrival,
                    now: self.now,
                });
            }
            if task.arrival > self.now {
                self.advance_to(task.arrival);
                self.now = task.arrival;
            }
            self.purge_expired();
            if task.deadline - self.now <= EPS_TIME {
                self.record_unserved(task, self.now);
                self.decisions.push((task.id, Decision::Rejected));
                continue;
            }
            self.invalidate_probe_memo();
            self.pool.push(task.clone());
            self.plan_dirty = true;
            self.decisions.push((task.id, Decision::Admitted));
        }
        Ok(())
    }

    /// Submits one arrival with typed errors instead of panics: the
    /// sharded server reroutes drained tasks between cells and must
    /// survive adversarial inputs. Advances the clock to the arrival
    /// time (committing every dispatch the incumbent plan starts before
    /// it), runs the admission policy, and — for the gated policies —
    /// adopts the tentative re-plan on admission. Under
    /// [`AdmissionPolicy::AdmitAll`] the re-plan is deferred until the
    /// clock next advances, so a batch of same-timestamp arrivals is
    /// re-planned once.
    ///
    /// A NaN or infinite arrival/deadline is
    /// [`OnlineError::InvalidTask`], a backwards arrival is
    /// [`OnlineError::NonMonotoneClock`]; neither records a decision nor
    /// touches the pool, so the service stays usable. (The panicking
    /// `submit` wrapper deprecated in 0.7.0 is gone; this is the only
    /// submission entry point.)
    pub fn try_submit(&mut self, task: &OnlineTask) -> Result<Decision, OnlineError> {
        if !task.arrival.is_finite() {
            return Err(OnlineError::InvalidTask {
                id: task.id,
                field: "arrival",
                value: task.arrival,
            });
        }
        if !task.deadline.is_finite() {
            return Err(OnlineError::InvalidTask {
                id: task.id,
                field: "deadline",
                value: task.deadline,
            });
        }
        if task.arrival < self.now - EPS_TIME {
            return Err(OnlineError::NonMonotoneClock {
                at: task.arrival,
                now: self.now,
            });
        }
        if task.arrival > self.now {
            self.advance_to(task.arrival);
            self.now = task.arrival;
        }
        self.purge_expired();

        // Dead on arrival: the deadline already passed.
        if task.deadline - self.now <= EPS_TIME {
            self.record_unserved(task, self.now);
            self.decisions.push((task.id, Decision::Rejected));
            return Ok(Decision::Rejected);
        }

        let decision = match self.cfg.policy {
            AdmissionPolicy::AdmitAll => {
                self.invalidate_probe_memo();
                self.pool.push(task.clone());
                self.plan_dirty = true;
                Decision::Admitted
            }
            policy => {
                self.ensure_plan();
                let baseline = self.cached_baseline();
                self.decide_and_adopt(task, policy, baseline)
            }
        };
        self.decisions.push((task.id, decision));
        Ok(decision)
    }

    /// Advances the service clock to `t` without an arrival: commits
    /// every dispatch the incumbent plan starts before `t` and settles
    /// completions at or before it. The sharded server uses this to
    /// align a cell on a routing event (a shard kill, a federation
    /// settlement) before acting on it.
    pub fn advance_clock(&mut self, t: f64) -> Result<(), OnlineError> {
        if !t.is_finite() {
            return Err(OnlineError::InvalidTask {
                id: u64::MAX,
                field: "clock",
                value: t,
            });
        }
        if t < self.now - EPS_TIME {
            return Err(OnlineError::NonMonotoneClock {
                at: t,
                now: self.now,
            });
        }
        if t > self.now {
            self.advance_to(t);
            self.now = t;
        }
        Ok(())
    }

    /// Removes and returns every pooled task that has not been
    /// dispatched and carries no partial work from an earlier cut run,
    /// in pool (admission) order. Failure remnants stay pooled: their
    /// partial outcome lives in this service's trace, and handing them
    /// to another cell would double-count that work. The incumbent plan
    /// and queues are dropped; the remaining pool re-plans on the next
    /// clock advance.
    pub fn drain_pending(&mut self) -> Vec<OnlineTask> {
        self.invalidate_probe_memo();
        let carry = &self.carry;
        let (drained, kept): (Vec<OnlineTask>, Vec<OnlineTask>) = std::mem::take(&mut self.pool)
            .into_iter()
            .partition(|t| !carry.contains_key(&t.id));
        self.pool = kept;
        self.plan = None;
        self.clear_queues();
        self.replanner.clear_anchor();
        self.plan_dirty = !self.pool.is_empty();
        drained
    }

    /// Removes and returns every pooled task of `tenant` that has not
    /// been dispatched and carries no partial work, in pool (admission)
    /// order — the single-tenant variant of [`Self::drain_pending`],
    /// used by the server's load-skew rebalancer to move one tenant's
    /// queue to another cell. Failure remnants stay for the same
    /// reason as in a full drain: their partial outcomes belong to this
    /// cell's trace. When anything moves, the incumbent plan and queues
    /// are dropped and the remaining pool re-plans on the next advance.
    pub fn drain_tenant(&mut self, tenant: u64) -> Vec<OnlineTask> {
        let carry = &self.carry;
        let (drained, kept): (Vec<OnlineTask>, Vec<OnlineTask>) = std::mem::take(&mut self.pool)
            .into_iter()
            .partition(|t| t.tenant == tenant && !carry.contains_key(&t.id));
        self.pool = kept;
        if drained.is_empty() {
            return drained;
        }
        self.invalidate_probe_memo();
        self.plan = None;
        self.clear_queues();
        self.replanner.clear_anchor();
        self.plan_dirty = !self.pool.is_empty();
        drained
    }

    /// Pending *movable* tasks per tenant — pool tasks that a
    /// [`Self::drain_tenant`] call would actually hand over (failure
    /// remnants carrying partial work are excluded). Ascending tenant
    /// order, so callers iterate deterministically.
    pub fn pending_by_tenant(&self) -> Vec<(u64, usize)> {
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for t in &self.pool {
            if !self.carry.contains_key(&t.id) {
                *counts.entry(t.tenant).or_insert(0) += 1;
            }
        }
        counts.into_iter().collect()
    }

    /// Injects a disruption at service time `at`, advancing the clock to
    /// it first (committing every dispatch the incumbent plan starts
    /// before `at`, exactly as an arrival would). Returns
    /// [`ExecError::InvalidConfig`] for a non-finite or past `at`, an
    /// out-of-range machine index, or a degradation factor outside
    /// `(0, 1]`; disruptions aimed at an already-dead machine are
    /// silently ignored. See the module docs for recovery semantics.
    pub fn inject(&mut self, at: f64, d: &Disruption) -> Result<(), ExecError> {
        if !(at.is_finite() && at >= self.now - EPS_TIME) {
            return Err(ExecError::InvalidConfig {
                field: "disruption.at",
                value: at,
                requirement: "finite and non-decreasing on the service clock",
            });
        }
        match *d {
            Disruption::MachineFailure { machine }
            | Disruption::SpeedDegradation { machine, .. }
                if machine >= self.park.len() =>
            {
                return Err(ExecError::InvalidConfig {
                    field: "disruption.machine",
                    value: machine as f64,
                    requirement: "a valid machine index",
                });
            }
            Disruption::SpeedDegradation { factor, .. }
                if !(factor.is_finite() && factor > 0.0 && factor <= 1.0) =>
            {
                return Err(ExecError::InvalidConfig {
                    field: "disruption.factor",
                    value: factor,
                    requirement: "in (0, 1]",
                });
            }
            Disruption::BudgetShock { delta } if !delta.is_finite() => {
                return Err(ExecError::InvalidConfig {
                    field: "disruption.delta",
                    value: delta,
                    requirement: "finite",
                });
            }
            _ => {}
        }
        if at > self.now {
            self.advance_to(at);
            self.now = at;
        }
        self.invalidate_probe_memo();
        match *d {
            Disruption::MachineFailure { machine } => {
                if self.alive[machine] {
                    self.alive[machine] = false;
                    self.fail_machine(machine, self.now);
                    self.plan_dirty = true;
                }
            }
            Disruption::SpeedDegradation { machine, factor } => {
                if self.alive[machine] && factor < 1.0 {
                    self.degrade[machine] *= factor;
                    self.plan_dirty = true;
                }
            }
            Disruption::BudgetShock { delta } => {
                self.ledger.apply_shock(delta);
                self.plan_dirty = true;
            }
        }
        Ok(())
    }

    /// Drains the service: commits every remaining planned dispatch,
    /// settles the ledger, records never-served tasks, and produces the
    /// report.
    pub fn finish(mut self) -> OnlineReport {
        self.advance_to(f64::INFINITY);
        // Whatever is still pooled never got machine time. A task whose
        // earlier run was cut by a machine failure already carries a
        // recorded partial outcome — leave it in place.
        let leftovers: Vec<OnlineTask> = std::mem::take(&mut self.pool);
        for task in &leftovers {
            self.starved += 1;
            if !self.carry.contains_key(&task.id) {
                self.record_unserved(task, self.now);
            }
        }

        let mut events = std::mem::take(&mut self.events);
        events.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.task.cmp(&b.task)));
        let task_ids: Vec<u64> = self.outcomes.keys().copied().collect();
        let tasks: Vec<TaskOutcome> = self.outcomes.values().cloned().collect();
        let realized_accuracy: f64 = tasks.iter().map(|t| t.accuracy).sum();
        let realized_energy: f64 = tasks.iter().map(|t| t.energy).sum();
        // Recomputed rather than tracked incrementally: a failure cut
        // can retract the completion a commit had already maxed in.
        let makespan = tasks
            .iter()
            .filter(|t| t.machine.is_some())
            .map(|t| t.completion)
            .fold(0.0, f64::max);
        let compressions = events
            .iter()
            .filter(|e| e.kind == EventKind::Compressed)
            .count();
        let drops = events
            .iter()
            .filter(|e| e.kind == EventKind::Dropped)
            .count();
        let rejected = self
            .decisions
            .iter()
            .filter(|(_, d)| *d == Decision::Rejected)
            .count();
        let summary = OnlineSummary {
            arrivals: self.decisions.len(),
            admitted: self.decisions.len() - rejected,
            rejected,
            expired: self.expired,
            starved: self.starved,
            dispatched: self.dispatched,
            replans: self.replans,
            solves: self.solves,
            total_accuracy: realized_accuracy,
            committed_energy: self.committed_energy,
            spent_energy: realized_energy,
            budget: self.ledger.budget(),
            makespan,
            failures: self.failures,
        };
        OnlineReport {
            trace: ExecutionTrace {
                events,
                tasks,
                realized_accuracy,
                realized_energy,
                compressions,
                drops,
                makespan,
            },
            task_ids,
            decisions: self.decisions,
            summary,
            ledger: self.ledger,
            replan: {
                let mut stats = self.replanner.stats();
                stats.memo_hits = self.memo_hits;
                stats
            },
        }
    }

    // ---- internals ------------------------------------------------------

    /// Commits every planned dispatch starting strictly before `t` (in
    /// chronological order, so jitter-shifted starts cascade correctly),
    /// then settles every completion at or before `t`. Re-plans first
    /// when the pool changed since the incumbent was computed.
    fn advance_to(&mut self, t: f64) {
        self.invalidate_probe_memo();
        if self.plan_dirty {
            self.replan();
        }
        let plan_time = self.plan.as_ref().map(|p| p.time).unwrap_or(self.now);
        loop {
            let mut best: Option<(f64, usize)> = None;
            for (r, q) in self.queues.iter().enumerate() {
                if q.front().is_some() {
                    let start = self.free_at[r].max(plan_time);
                    if best.map(|(s, _)| start < s).unwrap_or(true) {
                        best = Some((start, r));
                    }
                }
            }
            let Some((start, r)) = best else { break };
            if start >= t {
                break;
            }
            let q = self.queues[r].pop_front().expect("front checked");
            self.commit(q, r, start);
        }
        while let Some(s) = self.settle.peek() {
            if s.time <= t {
                let s = *s;
                self.settle.pop();
                if self.cancelled.remove(&s.seq) {
                    // Cut by a machine failure: the ledger already
                    // settled the joules actually burned.
                    continue;
                }
                self.inflight.remove(&s.id);
                self.ledger.settle(s.planned_energy, s.actual_energy);
            } else {
                break;
            }
        }
    }

    /// Cuts every task in flight on machine `r` at the failure instant
    /// `at`. [`Self::advance_to`] has already settled completions `<=
    /// at`, so everything still tracked on `r` is genuinely mid-run.
    fn fail_machine(&mut self, r: usize, at: f64) {
        let cut: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, fl)| fl.machine == r)
            .map(|(&id, _)| id)
            .collect();
        for id in cut {
            self.cut_inflight(id, at);
        }
    }

    /// Cuts one in-flight dispatch at `at`: settles the joules actually
    /// burned, rewrites its terminal trace event to
    /// [`EventKind::Failed`], fixes a partial outcome per the overrun
    /// policy, and — under [`OverrunPolicy::Compress`] — returns the
    /// remaining work to the pool as a shifted residual accuracy curve.
    fn cut_inflight(&mut self, id: u64, at: f64) {
        self.invalidate_probe_memo();
        let fl = self
            .inflight
            .remove(&id)
            .expect("cut targets are in flight");
        debug_assert!(
            fl.completion > at - 1e-9,
            "completed dispatches settle before a cut"
        );
        self.cancelled.insert(fl.seq);
        let elapsed = (at - fl.start).max(0.0);
        let burned = fl.power * elapsed;
        let done = fl.rate * elapsed;
        self.ledger.settle(fl.planned_energy, burned);
        let ev = &mut self.events[fl.event_idx];
        ev.time = at;
        ev.kind = EventKind::Failed;
        let kept = match self.cfg.overrun {
            OverrunPolicy::Compress => done,
            OverrunPolicy::Drop => 0.0,
        };
        let total_work = fl.prior_work + kept;
        let total_energy = fl.prior_energy + burned;
        self.outcomes.insert(
            id,
            TaskOutcome {
                machine: Some(fl.machine),
                start: fl.start,
                completion: at,
                work: total_work,
                accuracy: fl.task.accuracy.eval(kept.max(0.0)),
                energy: total_energy,
                met_deadline: at <= fl.task.deadline + 1e-9,
                speed_factor: fl.factor,
            },
        );
        self.failures += 1;
        if self.cfg.overrun == OverrunPolicy::Compress && fl.task.deadline - at > EPS_TIME {
            if let Some(residual) = shift_accuracy(&fl.task.accuracy, kept) {
                self.pool.push(OnlineTask {
                    id,
                    tenant: fl.task.tenant,
                    arrival: at,
                    deadline: fl.task.deadline,
                    accuracy: residual,
                });
                self.carry.insert(id, (total_work, total_energy));
                self.plan_dirty = true;
            }
        }
    }

    /// Commits one dispatch: draws the task's jitter factor, applies the
    /// overrun policy against the *absolute* deadline, fixes the task's
    /// outcome, and commits the planned energy.
    fn commit(&mut self, q: Queued, r: usize, start: f64) {
        let idx = self
            .pool
            .iter()
            .position(|p| p.id == q.id)
            .expect("queued tasks are pooled");
        let task = self.pool.remove(idx);
        let mach = self.park.get(r);
        let degrade = self.degrade[r];
        let factor = self.jitter_factor(q.id);
        // The plan was solved on the degraded speed, so `duration` is
        // already time on the slow machine: planned work scales by the
        // degradation, the nominal runtime does not.
        let planned_work = q.duration * mach.speed() * degrade;
        let full_runtime = q.duration / factor;
        let time_to_deadline = (task.deadline - start).max(0.0);
        let (runtime, work, kind) = if full_runtime <= time_to_deadline + 1e-12 {
            (full_runtime, planned_work, EventKind::Finish)
        } else {
            match self.cfg.overrun {
                OverrunPolicy::Compress => (
                    time_to_deadline,
                    mach.speed() * degrade * factor * time_to_deadline,
                    EventKind::Compressed,
                ),
                OverrunPolicy::Drop => (time_to_deadline, 0.0, EventKind::Dropped),
            }
        };
        let completion = start + runtime;
        let planned_energy = q.duration * mach.power();
        let actual_energy = mach.power() * runtime;
        let (prior_work, prior_energy) = self.carry.remove(&q.id).unwrap_or((0.0, 0.0));
        let seq = self.dispatch_seq;
        self.dispatch_seq += 1;
        self.free_at[r] = completion;
        self.ledger.commit(planned_energy);
        self.committed_energy += planned_energy;
        self.settle.push(Settle {
            time: completion,
            id: q.id,
            seq,
            planned_energy,
            actual_energy,
        });
        self.events.push(TraceEvent {
            time: start,
            machine: r,
            task: q.id as usize,
            kind: EventKind::Dispatch,
        });
        let event_idx = self.events.len();
        self.events.push(TraceEvent {
            time: completion,
            machine: r,
            task: q.id as usize,
            kind,
        });
        self.inflight.insert(
            q.id,
            InFlight {
                seq,
                machine: r,
                start,
                completion,
                rate: if kind == EventKind::Dropped {
                    0.0
                } else {
                    mach.speed() * degrade * factor
                },
                power: mach.power(),
                planned_energy,
                factor,
                prior_work,
                prior_energy,
                event_idx,
                task: task.clone(),
            },
        );
        self.outcomes.insert(
            q.id,
            TaskOutcome {
                machine: Some(r),
                start,
                completion,
                // `task.accuracy` is the residual curve when an earlier
                // run of this task was cut by a failure, so evaluating
                // the *new* work yields the cumulative accuracy while
                // work and energy report cumulative totals.
                work: prior_work + work,
                accuracy: task.accuracy.eval(work.max(0.0)),
                energy: prior_energy + actual_energy,
                met_deadline: completion <= task.deadline + 1e-9,
                speed_factor: factor,
            },
        );
        self.dispatched += 1;
    }

    /// Per-task jitter factor: a pure function of `(jitter_seed, id)`,
    /// independent of re-plan count and dispatch order.
    fn jitter_factor(&self, id: u64) -> f64 {
        let j = self.cfg.speed_jitter;
        if j <= 0.0 {
            return 1.0;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(splitmix64(self.cfg.jitter_seed ^ splitmix64(id)));
        1.0 + rng.gen_range(-j..=j)
    }

    /// Removes pool tasks whose deadline has passed, recording their
    /// zero-work outcome.
    fn purge_expired(&mut self) {
        let now = self.now;
        let expired: Vec<OnlineTask> = self
            .pool
            .iter()
            .filter(|p| p.deadline - now <= EPS_TIME)
            .cloned()
            .collect();
        if expired.is_empty() {
            return;
        }
        self.invalidate_probe_memo();
        self.pool.retain(|p| p.deadline - now > EPS_TIME);
        for task in &expired {
            self.expired += 1;
            // A re-pooled failure remnant already has its partial
            // outcome recorded at the cut — leave it in place.
            if !self.carry.contains_key(&task.id) {
                self.record_unserved(task, now);
            }
        }
        self.plan_dirty = true;
    }

    /// Records a task that will never run (rejected / expired /
    /// starved): zero work, zero energy, its floor accuracy, and a
    /// `Dropped` marker event (machine `usize::MAX`, like the offline
    /// executor's never-dispatched convention).
    fn record_unserved(&mut self, task: &OnlineTask, time: f64) {
        self.events.push(TraceEvent {
            time,
            machine: usize::MAX,
            task: task.id as usize,
            kind: EventKind::Dropped,
        });
        self.outcomes.insert(
            task.id,
            TaskOutcome {
                machine: None,
                start: time,
                completion: time,
                work: 0.0,
                accuracy: task.accuracy.a_min(),
                energy: 0.0,
                met_deadline: true,
                speed_factor: 1.0,
            },
        );
    }

    /// Drops the same-state probe memo. Called on *every* mutation of an
    /// input the gated tentative evaluation reads — pool contents, the
    /// clock, the ledger, the park's alive/degrade state, or the
    /// incumbent plan — so a surviving memo entry is proof the next
    /// evaluation of the same candidate would recompute bitwise the
    /// same values. Over-invalidation only costs hits, never bytes.
    fn invalidate_probe_memo(&mut self) {
        self.probe_memo.clear();
        self.baseline_memo = None;
    }

    /// The candidate's structural words — every bit the tentative value
    /// depends on through the candidate itself. `id` and `tenant` are
    /// deliberately excluded: the candidate is appended after the pool
    /// under the residual's stable deadline sort, so two candidates with
    /// equal deadline and accuracy land at the same position and flop
    /// vector whatever their ids.
    fn candidate_words(task: &OnlineTask) -> Vec<u64> {
        let acc = &task.accuracy;
        let mut words = Vec::with_capacity(1 + acc.breakpoints().len() + acc.values().len());
        words.push(task.deadline.to_bits());
        words.extend(acc.breakpoints().iter().map(|f| f.to_bits()));
        words.extend(acc.values().iter().map(|a| a.to_bits()));
        words
    }

    /// Memoizes one gated evaluation's exact tentative values against
    /// the current service state (bounded FIFO; any mutation clears it).
    fn remember_probe(&mut self, words: Vec<u64>, tentative: f64, tentative_cand: f64) {
        const PROBE_MEMO_CAP: usize = 16;
        if self.probe_memo.len() >= PROBE_MEMO_CAP {
            self.probe_memo.remove(0);
        }
        self.probe_memo.push((words, tentative, tentative_cand));
    }

    /// [`Self::baseline_value`], served from the same-state memo under
    /// [`ReplanStrategy::Incremental`] (the memoized value is bitwise
    /// what recomputation yields, so the decision arithmetic is
    /// strategy-independent either way).
    fn cached_baseline(&mut self) -> f64 {
        if self.cfg.replan != ReplanStrategy::Incremental {
            return self.baseline_value();
        }
        if let Some(b) = self.baseline_memo {
            return b;
        }
        let b = self.baseline_value();
        self.baseline_memo = Some(b);
        b
    }

    /// The admission baseline: the incumbent plan's *fractional* value
    /// restricted to still-pending tasks — `Σ_j a_j(f_j)` over the
    /// incumbent's pooled flop vector, summed in plan order. The same
    /// plain arithmetic on every strategy and on both the full-solve and
    /// value-estimate tentative paths, so a decision threshold cannot
    /// drift between replanner arms. `0.0` without an incumbent.
    fn baseline_value(&self) -> f64 {
        let Some(plan) = self.plan.as_ref() else {
            return 0.0;
        };
        let by_id: BTreeMap<u64, &PwlAccuracy> =
            self.pool.iter().map(|p| (p.id, &p.accuracy)).collect();
        let flops = &plan.approx.fractional.flops;
        plan.task_ids
            .iter()
            .enumerate()
            .filter_map(|(j, id)| by_id.get(id).map(|acc| acc.eval(flops[j])))
            .sum()
    }

    /// The fractional tentative value of a full solve: bit-identical to
    /// the `Σ_j a_j(f_j)` sum the value-estimate path reports for the
    /// same flop vector, so the two tentative paths feed the admission
    /// policy through one arithmetic.
    fn fractional_total(inst: &Instance, flops: &[f64]) -> f64 {
        flops
            .iter()
            .enumerate()
            .map(|(j, &f)| inst.task(j).accuracy.eval(f))
            .sum()
    }

    /// One gated admission evaluation, counted as exactly one solver
    /// invocation whichever replanner path answers it, followed by plan
    /// adoption on admission.
    ///
    /// Path order under [`ReplanStrategy::Incremental`]:
    /// 0. the same-state probe memo replays the exact tentative values
    ///    of an identical candidate seen since the last state mutation
    ///    (pool-size-independent);
    /// 1. a checkpoint *insertion delta* lower-bounds the tentative
    ///    value at the incumbent's anchored caps —
    ///    [`AdmissionPolicy::DegradeToFit`]'s test is monotone in the
    ///    tentative value, so clearing the bar at a lower bound proves
    ///    the re-optimized value clears it too (early admit only; a low
    ///    bound proves nothing and falls through);
    /// 2. a value-only warm estimate (the full descent without the
    ///    waterfill/assignment/oracle finishers), served from the
    ///    replanner's fingerprint-keyed estimate cache on repeats;
    /// 3. the full solve — the only path under `Cold`/`WarmStart`
    ///    (where it doubles as the adoption solve), and the bit-exact
    ///    fallback whenever the cheap paths decline to answer.
    fn decide_and_adopt(
        &mut self,
        task: &OnlineTask,
        policy: AdmissionPolicy,
        baseline: f64,
    ) -> Decision {
        let cand_floor = task.accuracy.a_min();
        if policy == AdmissionPolicy::DegradeToFit {
            let residual_cand = Task::new(task.deadline - self.now, task.accuracy.clone());
            if let Some(bound) = self.replanner.insert_value_bound(&residual_cand) {
                // `tentative_cand` is unknown on this path and unused by
                // DegradeToFit's test; NaN poisons any future misuse.
                if policy.decide(baseline, bound, f64::NAN, cand_floor) == Decision::Admitted {
                    self.solves += 1;
                    return self.admit_via_cache(task);
                }
            }
        }
        // Same-state probe memo: an identical candidate against an
        // unmutated service replays its exact tentative values without
        // rebuilding the residual — the per-arrival cost of a repeated
        // rejection stays flat however large the pool is.
        let memo_words =
            (self.cfg.replan == ReplanStrategy::Incremental).then(|| Self::candidate_words(task));
        if let Some(words) = memo_words.as_ref() {
            if let Some(&(_, tentative, tentative_cand)) =
                self.probe_memo.iter().find(|(seen, _, _)| seen == words)
            {
                self.memo_hits += 1;
                self.solves += 1;
                let decision = policy.decide(baseline, tentative, tentative_cand, cand_floor);
                if decision == Decision::Admitted {
                    return self.admit_via_cache(task);
                }
                self.record_unserved(task, self.now);
                return decision;
            }
        }
        let Some((res, machine_ids)) = self.residual_for(Some(task)) else {
            // Every machine is dead: nothing can serve the candidate,
            // so the gated policies turn it away.
            self.record_unserved(task, self.now);
            return Decision::Rejected;
        };
        let warm = self.warm_hint(&machine_ids);
        if let Some(est) = self.replanner.estimate(&res.instance, warm.as_ref()) {
            self.solves += 1;
            let jc = res
                .task_ids
                .iter()
                .position(|&id| id == task.id)
                .expect("candidate is live, so it is in the residual");
            let tentative_cand = res.instance.task(jc).accuracy.eval(est.flops[jc]);
            if let Some(words) = memo_words {
                self.remember_probe(words, est.total_accuracy, tentative_cand);
            }
            let decision = policy.decide(baseline, est.total_accuracy, tentative_cand, cand_floor);
            if decision == Decision::Admitted {
                return self.admit_via_cache(task);
            }
            self.record_unserved(task, self.now);
            return decision;
        }
        let approx = self.solve_residual(&res, warm.as_ref());
        self.solves += 1;
        let jc = res
            .task_ids
            .iter()
            .position(|&id| id == task.id)
            .expect("candidate is live, so it is in the residual");
        let tentative = Self::fractional_total(&res.instance, &approx.fractional.flops);
        let tentative_cand = res
            .instance
            .task(jc)
            .accuracy
            .eval(approx.fractional.flops[jc]);
        if let Some(words) = memo_words {
            self.remember_probe(words, tentative, tentative_cand);
        }
        let decision = policy.decide(baseline, tentative, tentative_cand, cand_floor);
        if decision == Decision::Admitted {
            self.invalidate_probe_memo();
            self.pool.push(task.clone());
            self.replanner
                .anchor(&res.instance, &approx.fractional.profile);
            self.adopt(Plan {
                time: self.now,
                task_ids: res.task_ids,
                machine_ids,
                approx,
            });
        } else {
            self.record_unserved(task, self.now);
        }
        decision
    }

    /// Admission reached without a full tentative solve (the delta-bound
    /// or estimate path): the adopted plan must still be bitwise what
    /// the cold pipeline produces, so the full solve runs now — served
    /// from the replanner's plan cache whenever this residual state was
    /// solved before. Deliberately *not* counted as a solver invocation:
    /// the full-solve arms adopt their tentative solve directly, and
    /// counter parity across strategies is part of the digest contract.
    fn admit_via_cache(&mut self, task: &OnlineTask) -> Decision {
        self.invalidate_probe_memo();
        self.pool.push(task.clone());
        match self.solve_pool(None) {
            Some((approx, res, machine_ids)) => {
                self.replanner
                    .anchor(&res.instance, &approx.fractional.profile);
                self.adopt(Plan {
                    time: self.now,
                    task_ids: res.task_ids,
                    machine_ids,
                    approx,
                });
            }
            // Unreachable in practice — the cheap paths only answer with
            // a live candidate on a live sub-park — but stay safe.
            None => {
                self.plan = None;
                self.plan_dirty = false;
                self.clear_queues();
                self.replanner.clear_anchor();
            }
        }
        Decision::Admitted
    }

    /// Ensures the incumbent plan was solved for the current pool at the
    /// current time (the gated policies compare against it).
    fn ensure_plan(&mut self) {
        self.purge_expired();
        if self.pool.is_empty() {
            self.plan = None;
            self.plan_dirty = false;
            self.clear_queues();
            self.replanner.clear_anchor();
            return;
        }
        let fresh = !self.plan_dirty && self.plan.as_ref().map(|p| p.time) == Some(self.now);
        if !fresh {
            self.replan();
        }
    }

    /// Re-plans the pending pool at the current time and adopts the
    /// result as the incumbent.
    fn replan(&mut self) {
        self.invalidate_probe_memo();
        self.plan_dirty = false;
        self.purge_expired();
        if self.pool.is_empty() {
            self.plan = None;
            self.clear_queues();
            self.replanner.clear_anchor();
            return;
        }
        // `None` here means every machine is dead: pooled tasks can only
        // starve, and there is nothing to plan.
        match self.solve_pool(None) {
            Some((approx, res, machine_ids)) => {
                self.solves += 1;
                self.replanner
                    .anchor(&res.instance, &approx.fractional.profile);
                self.adopt(Plan {
                    time: self.now,
                    task_ids: res.task_ids,
                    machine_ids,
                    approx,
                });
            }
            None => {
                self.plan = None;
                self.clear_queues();
                self.replanner.clear_anchor();
            }
        }
    }

    /// The machine park re-plans run against: alive machines at their
    /// degraded speeds (power unchanged), plus the sub-index → original
    /// park index mapping. `None` when every machine is dead. While no
    /// disruption has touched the park this is a verbatim clone, so
    /// disruption-free runs replay the pre-fault code path bit for bit.
    fn alive_park(&self) -> Option<(MachinePark, Vec<usize>)> {
        let pristine = self.alive.iter().all(|&a| a) && self.degrade.iter().all(|&g| g == 1.0);
        if pristine {
            return Some((self.park.clone(), (0..self.park.len()).collect()));
        }
        let mut machines = Vec::new();
        let mut machine_ids = Vec::new();
        for (r, mach) in self.park.machines().iter().enumerate() {
            if !self.alive[r] {
                continue;
            }
            let g = self.degrade[r];
            let sub = if g == 1.0 {
                *mach
            } else {
                Machine::new(mach.speed() * g, mach.power())
                    .expect("a degraded speed stays positive and finite")
            };
            machines.push(sub);
            machine_ids.push(r);
        }
        if machines.is_empty() {
            return None;
        }
        Some((MachinePark::new(machines), machine_ids))
    }

    /// Builds the residual instance of the pool (plus an optional
    /// candidate, appended last so equal deadlines keep it after the
    /// incumbents under the residual's stable sort) at the current time
    /// over the alive sub-park. Returns `None` when there is nothing to
    /// schedule — no live item, or no live machine.
    fn residual_for(
        &self,
        extra: Option<&OnlineTask>,
    ) -> Option<(dsct_core::residual::ResidualInstance, Vec<usize>)> {
        let (park, machine_ids) = self.alive_park()?;
        let mut items: Vec<ResidualItem> = self
            .pool
            .iter()
            .map(|p| ResidualItem {
                id: p.id,
                deadline: p.deadline,
                accuracy: p.accuracy.clone(),
            })
            .collect();
        if let Some(task) = extra {
            items.push(ResidualItem {
                id: task.id,
                deadline: task.deadline,
                accuracy: task.accuracy.clone(),
            });
        }
        // Infallible by construction: `try_submit` rejects NaN/infinite
        // deadlines at the boundary, `purge_expired` removed non-positive
        // residuals, and the ledger clamps the remaining budget at zero.
        let res = residual_instance(&items, self.now, &park, self.ledger.remaining())
            .expect("pool tasks are validated at submission and the budget is clamped")?;
        debug_assert!(res.expired.is_empty(), "pool purged before solving");
        Some((res, machine_ids))
    }

    /// Runs a residual instance through the replanner's full-solve path,
    /// enforcing the invariant oracle on the result when configured.
    fn solve_residual(
        &mut self,
        res: &dsct_core::residual::ResidualInstance,
        warm: Option<&EnergyProfile>,
    ) -> dsct_core::approx::ApproxSolution {
        let approx = self.replanner.solve(&res.instance, warm);
        if self.cfg.check_invariants {
            let sol = Solution::from_approx(&res.instance, approx.clone());
            oracle::enforce(&res.instance, &sol, &Claims::approx(), "online-residual");
        }
        approx
    }

    /// Solves the residual instance of the pool (plus an optional
    /// candidate) at the current time, warm-starting when configured and
    /// an incumbent exists. Returns `None` when there is nothing to
    /// schedule — no live item, or no live machine.
    fn solve_pool(
        &mut self,
        extra: Option<&OnlineTask>,
    ) -> Option<(
        dsct_core::approx::ApproxSolution,
        dsct_core::residual::ResidualInstance,
        Vec<usize>,
    )> {
        let (res, machine_ids) = self.residual_for(extra)?;
        let warm = self.warm_hint(&machine_ids);
        let approx = self.solve_residual(&res, warm.as_ref());
        Some((approx, res, machine_ids))
    }

    /// The warm-start hint: the incumbent's fractional profile summed
    /// over still-pending tasks (dispatched work excluded, so the hint
    /// shrinks as the plan is consumed), re-indexed from the incumbent's
    /// machine set onto `machine_ids` (the new solve's sub-park). A
    /// machine that failed since the incumbent was solved simply loses
    /// its share of the hint.
    fn warm_hint(&self, machine_ids: &[usize]) -> Option<EnergyProfile> {
        if self.cfg.replan == ReplanStrategy::Cold {
            return None;
        }
        let plan = self.plan.as_ref()?;
        let fr = &plan.approx.fractional.schedule;
        let pooled: HashSet<u64> = self.pool.iter().map(|p| p.id).collect();
        let mut by_original = vec![0.0f64; self.park.len()];
        for (j, id) in plan.task_ids.iter().enumerate() {
            if pooled.contains(id) {
                for (r_sub, &r) in plan.machine_ids.iter().enumerate() {
                    by_original[r] += fr.t(j, r_sub);
                }
            }
        }
        let caps: Vec<f64> = machine_ids.iter().map(|&r| by_original[r]).collect();
        Some(EnergyProfile::new(caps))
    }

    /// Adopts a plan as the incumbent and materializes its dispatch
    /// queues: per machine, assigned tasks in residual (deadline) order,
    /// starting no earlier than the machine's committed work allows, cut
    /// at their absolute deadlines (the `DSCT-EA-APPROX` phase-2 cut
    /// with an availability offset). Cutting only shortens times, so the
    /// materialized plan consumes at most the solved plan's energy.
    fn adopt(&mut self, plan: Plan) {
        self.invalidate_probe_memo();
        self.clear_queues();
        let schedule = &plan.approx.schedule;
        for (r_sub, &r) in plan.machine_ids.iter().enumerate() {
            let mut completion = self.free_at[r].max(plan.time);
            for (j, &id) in plan.task_ids.iter().enumerate() {
                let t = schedule.t(j, r_sub);
                if t <= 0.0 {
                    continue;
                }
                let task = self
                    .pool
                    .iter()
                    .find(|p| p.id == id)
                    .expect("planned tasks are pooled");
                let d = task.deadline;
                let new_t = if completion + t > d {
                    (d - completion).max(0.0)
                } else {
                    t
                };
                completion += new_t;
                if new_t > 0.0 {
                    self.queues[r].push_back(Queued {
                        id,
                        duration: new_t,
                    });
                }
            }
        }
        self.replans += 1;
        self.plan = Some(plan);
        self.plan_dirty = false;
    }

    fn clear_queues(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
    }
}

/// The shared configuration shape of the trace-replay entry points:
/// [`replay`] here and `replay_sharded` in `dsct-server` consume the
/// same struct, so a harness sweeps one config across both paths. The
/// plain replay is the single-cell case by definition and reads only
/// [`ReplayConfig::online`]; the sharded path additionally reads
/// `shards` and `workers`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Per-cell online service configuration.
    pub online: OnlineConfig,
    /// Shard cells of a sharded replay (ignored by [`replay`]).
    pub shards: usize,
    /// Worker threads flushing shard cells in a sharded replay; results
    /// never depend on it (ignored by [`replay`]).
    pub workers: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            online: OnlineConfig::default(),
            shards: 4,
            workers: 1,
        }
    }
}

/// Replays an [`ArrivalTrace`] through a fresh service: submits every
/// task in arrival order and drains. Deterministic: equal inputs produce
/// equal (bit-identical) reports, regardless of `solver_parallelism` or
/// how many threads the surrounding harness uses.
pub fn replay(trace: &ArrivalTrace, cfg: &ReplayConfig) -> Result<OnlineReport, OnlineError> {
    let mut svc = OnlineService::new(trace.park.clone(), trace.budget, cfg.online)?;
    for task in &trace.tasks {
        svc.try_submit(task)?;
    }
    Ok(svc.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsct_accuracy::PwlAccuracy;
    use dsct_machines::Machine;

    fn park() -> MachinePark {
        MachinePark::new(vec![
            Machine::new(2000.0, 80.0).unwrap(),
            Machine::new(5000.0, 120.0).unwrap(),
        ])
    }

    fn task(id: u64, arrival: f64, deadline: f64) -> OnlineTask {
        OnlineTask {
            id,
            tenant: id,
            arrival,
            deadline,
            accuracy: PwlAccuracy::new(&[(0.0, 0.1), (400.0, 0.6), (1200.0, 0.85)]).unwrap(),
        }
    }

    #[test]
    fn single_arrival_is_served_and_the_ledger_balances() {
        let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        assert_eq!(
            svc.try_submit(&task(0, 0.0, 1.0)).unwrap(),
            Decision::Admitted
        );
        let report = svc.finish();
        assert_eq!(report.summary.dispatched, 1);
        assert_eq!(report.summary.solves, 1);
        assert!(report.summary.total_accuracy > 0.1);
        // Zero jitter: actuals equal plans, nothing stays committed.
        assert!((report.ledger.spent() - report.summary.committed_energy).abs() < 1e-9);
        assert_eq!(report.ledger.committed(), 0.0);
        assert!(report.ledger.spent() <= 500.0 + 1e-9);
    }

    #[test]
    fn same_timestamp_batch_replans_once_under_admit_all() {
        let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        for id in 0..6 {
            svc.try_submit(&task(id, 0.0, 1.0 + id as f64 * 0.1))
                .unwrap();
        }
        let report = svc.finish();
        assert_eq!(report.summary.arrivals, 6);
        assert_eq!(report.summary.admitted, 6);
        assert_eq!(
            report.summary.solves, 1,
            "a same-timestamp batch must be re-planned lazily, once"
        );
    }

    #[test]
    fn dead_on_arrival_tasks_are_rejected_by_every_policy() {
        for policy in [
            AdmissionPolicy::AdmitAll,
            AdmissionPolicy::RejectIfInfeasible,
            AdmissionPolicy::DegradeToFit,
        ] {
            let cfg = OnlineConfig {
                policy,
                ..OnlineConfig::default()
            };
            let mut svc = OnlineService::new(park(), 500.0, cfg).unwrap();
            svc.try_submit(&task(0, 0.0, 0.5)).unwrap();
            // Arrives at t=1 with deadline 0.8: already dead.
            assert_eq!(
                svc.try_submit(&task(1, 1.0, 0.8)).unwrap(),
                Decision::Rejected
            );
            let report = svc.finish();
            assert_eq!(report.summary.rejected, 1);
            assert_eq!(report.trace.tasks[1].accuracy, 0.1);
        }
    }

    #[test]
    fn rejecting_policies_never_beat_their_own_baseline_promise() {
        // Starve the budget so late arrivals cannot all be served; the
        // gated policies must still leave the run consistent.
        let cfg = OnlineConfig {
            policy: AdmissionPolicy::RejectIfInfeasible,
            ..OnlineConfig::default()
        };
        let mut svc = OnlineService::new(park(), 30.0, cfg).unwrap();
        for id in 0..5 {
            svc.try_submit(&task(id, id as f64 * 0.05, 0.6)).unwrap();
        }
        let report = svc.finish();
        assert_eq!(
            report.summary.rejected + report.summary.admitted,
            report.summary.arrivals
        );
        assert!(report.ledger.spent() <= 30.0 + 1e-9);
    }

    #[test]
    fn invalid_jitter_is_rejected_at_construction() {
        let cfg = OnlineConfig {
            speed_jitter: 1.0,
            ..OnlineConfig::default()
        };
        assert!(matches!(
            OnlineService::new(park(), 10.0, cfg),
            Err(OnlineError::Exec(ExecError::InvalidConfig { .. }))
        ));
    }

    #[test]
    fn degenerate_shard_inputs_yield_typed_errors_not_panics() {
        // Empty shard slice.
        assert_eq!(
            OnlineService::from_machines(Vec::new(), 10.0, OnlineConfig::default()).err(),
            Some(OnlineError::EmptyPark)
        );
        // Bad budget slices.
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(matches!(
                OnlineService::new(park(), bad, OnlineConfig::default()),
                Err(OnlineError::InvalidBudget(_))
            ));
        }
        // A zero budget slice is valid: the shard starves, not panics.
        let mut svc = OnlineService::new(park(), 0.0, OnlineConfig::default()).unwrap();
        assert_eq!(
            svc.try_submit(&task(0, 0.0, 1.0)).unwrap(),
            Decision::Admitted
        );
        let report = svc.finish();
        assert_eq!(report.summary.dispatched, 0);
        assert_eq!(report.ledger.spent(), 0.0);
    }

    #[test]
    fn adversarial_task_floats_are_rejected_without_state_damage() {
        let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        let mut bad = task(7, 0.0, 1.0);
        bad.deadline = f64::NAN;
        assert!(matches!(
            svc.try_submit(&bad),
            Err(OnlineError::InvalidTask {
                field: "deadline",
                ..
            })
        ));
        bad.deadline = f64::INFINITY;
        assert!(svc.try_submit(&bad).is_err());
        bad.deadline = 1.0;
        bad.arrival = f64::NAN;
        assert!(matches!(
            svc.try_submit(&bad),
            Err(OnlineError::InvalidTask {
                field: "arrival",
                ..
            })
        ));
        // The failed submissions recorded nothing: a clean task still
        // goes through and the report covers exactly one arrival.
        assert_eq!(
            svc.try_submit(&task(0, 0.0, 1.0)).unwrap(),
            Decision::Admitted
        );
        svc.try_submit(&task(1, 1.0, 0.5)).unwrap();
        assert!(matches!(
            svc.try_submit(&task(2, 0.2, 1.0)),
            Err(OnlineError::NonMonotoneClock { .. })
        ));
        let report = svc.finish();
        assert_eq!(report.summary.arrivals, 2);
    }

    #[test]
    fn drain_pending_hands_back_undispatched_tasks_and_keeps_remnants() {
        let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        for id in 0..4 {
            svc.try_submit(&task(id, 0.0, 5.0 + id as f64)).unwrap();
        }
        // Nothing dispatched yet (the batch re-plan is lazy): every
        // task drains, in admission order.
        let drained = svc.drain_pending();
        assert_eq!(
            drained.iter().map(|t| t.id).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
        assert_eq!(svc.pending(), 0);
        let report = svc.finish();
        assert_eq!(report.summary.dispatched, 0);
        assert_eq!(
            report.summary.starved, 0,
            "drained tasks are not starved here"
        );
        assert!(
            report.trace.tasks.is_empty(),
            "no outcome for drained tasks"
        );

        // A failure remnant, by contrast, stays pooled on drain.
        let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        svc.try_submit(&task(0, 0.0, 1.0)).unwrap();
        svc.advance_clock(1e-6).unwrap();
        let machine = {
            let fl = svc.inflight.values().next().expect("one task in flight");
            fl.machine
        };
        svc.inject(0.01, &Disruption::MachineFailure { machine })
            .unwrap();
        assert_eq!(svc.pending(), 1, "the remnant re-pooled");
        assert!(svc.drain_pending().is_empty(), "remnants never drain");
        assert_eq!(svc.pending(), 1);
    }

    #[test]
    fn failure_cuts_the_inflight_task_and_settles_burned_joules() {
        // One machine, so no survivor can pick up the remnant: the cut
        // outcome is final.
        let park = MachinePark::new(vec![Machine::new(2000.0, 80.0).unwrap()]);
        let mut svc = OnlineService::new(park, 500.0, OnlineConfig::default()).unwrap();
        svc.try_submit(&task(0, 0.0, 1.0)).unwrap();
        // Commit the dispatch without settling it (its completion lies
        // past 1e-6), then fail the machine it landed on mid-run.
        svc.advance_to(1e-6);
        let (machine, start, completion) = {
            let fl = svc.inflight.values().next().expect("one task in flight");
            (fl.machine, fl.start, fl.completion)
        };
        let mid = start + 0.5 * (completion - start);
        svc.inject(mid, &Disruption::MachineFailure { machine })
            .unwrap();
        let report = svc.finish();
        assert_eq!(report.summary.failures, 1);
        assert_eq!(report.trace.failures(), 1);
        let outcome = report.trace.tasks[0];
        assert_eq!(outcome.machine, Some(machine));
        assert!((outcome.completion - mid).abs() < 1e-9);
        assert!(outcome.work > 0.0, "compress keeps the partial work");
        // The ledger charged exactly the joules burned up to the cut.
        assert!((outcome.energy - 80.0 * (mid - start)).abs() < 1e-9);
        assert!((report.ledger.spent() - outcome.energy).abs() < 1e-9);
        assert_eq!(report.ledger.committed(), 0.0);
    }

    #[test]
    fn failure_remnant_finishes_on_the_surviving_machine() {
        let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        svc.try_submit(&task(0, 0.0, 1.0)).unwrap();
        svc.advance_to(1e-6);
        let (machine, start, completion) = {
            let fl = svc.inflight.values().next().expect("one task in flight");
            (fl.machine, fl.start, fl.completion)
        };
        let mid = start + 0.5 * (completion - start);
        svc.inject(mid, &Disruption::MachineFailure { machine })
            .unwrap();
        let report = svc.finish();
        assert_eq!(report.summary.failures, 1);
        let outcome = report.trace.tasks[0];
        // The remnant re-planned onto the survivor and kept its carry:
        // cumulative work exceeds the partial run, accuracy reflects it.
        assert_ne!(outcome.machine, Some(machine));
        assert!(outcome.work > 0.0);
        assert!(outcome.accuracy > 0.1);
        assert!(report.ledger.spent() <= 500.0 + 1e-9);
        assert_eq!(report.ledger.committed(), 0.0);
    }

    #[test]
    fn failure_under_drop_policy_pays_joules_but_keeps_no_work() {
        let cfg = OnlineConfig {
            overrun: OverrunPolicy::Drop,
            ..OnlineConfig::default()
        };
        let mut svc = OnlineService::new(park(), 500.0, cfg).unwrap();
        svc.try_submit(&task(0, 0.0, 1.0)).unwrap();
        svc.advance_to(1e-6);
        let (machine, start, completion) = {
            let fl = svc.inflight.values().next().expect("one task in flight");
            (fl.machine, fl.start, fl.completion)
        };
        let mid = start + 0.5 * (completion - start);
        svc.inject(mid, &Disruption::MachineFailure { machine })
            .unwrap();
        let report = svc.finish();
        let outcome = report.trace.tasks[0];
        assert_eq!(outcome.work, 0.0);
        assert_eq!(outcome.accuracy, 0.1);
        assert!(outcome.energy > 0.0, "burned joules are paid either way");
    }

    #[test]
    fn failure_remnant_is_replanned_onto_surviving_machines() {
        // Fail a machine at t=0 before anything runs: the whole pool
        // must land on the survivor and the run stays budget-consistent.
        let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        svc.inject(0.0, &Disruption::MachineFailure { machine: 1 })
            .unwrap();
        for id in 0..4 {
            svc.try_submit(&task(id, 0.0, 1.0 + id as f64 * 0.2))
                .unwrap();
        }
        let report = svc.finish();
        assert!(report.summary.dispatched > 0);
        for t in report.trace.tasks.iter() {
            assert_ne!(t.machine, Some(1), "dead machines never serve tasks");
        }
        assert!(report.ledger.spent() <= 500.0 + 1e-9);
    }

    #[test]
    fn degradation_slows_planning_speed_but_not_power() {
        let base = {
            let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
            svc.try_submit(&task(0, 0.0, 0.3)).unwrap();
            svc.finish()
        };
        let degraded = {
            let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
            svc.inject(
                0.0,
                &Disruption::SpeedDegradation {
                    machine: 0,
                    factor: 0.5,
                },
            )
            .unwrap();
            svc.inject(
                0.0,
                &Disruption::SpeedDegradation {
                    machine: 1,
                    factor: 0.5,
                },
            )
            .unwrap();
            svc.try_submit(&task(0, 0.0, 0.3)).unwrap();
            svc.finish()
        };
        // Halved speeds with the same deadline and power: the served
        // work (hence accuracy) can only go down.
        assert!(degraded.summary.total_accuracy <= base.summary.total_accuracy + 1e-9);
        assert!(degraded.trace.tasks[0].work < base.trace.tasks[0].work - 1e-9);
    }

    #[test]
    fn budget_shock_to_zero_starves_later_arrivals() {
        let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        svc.try_submit(&task(0, 0.0, 0.4)).unwrap();
        svc.inject(0.5, &Disruption::BudgetShock { delta: -1e6 })
            .unwrap();
        svc.try_submit(&task(1, 0.6, 1.2)).unwrap();
        let report = svc.finish();
        assert_eq!(report.ledger.budget(), 0.0);
        // Task 0 ran before the shock; task 1 found an empty ledger.
        assert!(report.trace.tasks[0].work > 0.0);
        assert_eq!(report.trace.tasks[1].work, 0.0);
    }

    #[test]
    fn disruption_free_runs_are_unchanged_by_the_fault_machinery() {
        // Injecting a degradation with factor 1.0 and a zero shock must
        // leave the run bit-identical to an untouched service.
        let run = |touch: bool| {
            let mut svc = OnlineService::new(park(), 120.0, OnlineConfig::default()).unwrap();
            if touch {
                svc.inject(
                    0.0,
                    &Disruption::SpeedDegradation {
                        machine: 0,
                        factor: 1.0,
                    },
                )
                .unwrap();
                svc.inject(0.0, &Disruption::BudgetShock { delta: 0.0 })
                    .unwrap();
            }
            for id in 0..5 {
                svc.try_submit(&task(id, id as f64 * 0.1, 0.8 + id as f64 * 0.15))
                    .unwrap();
            }
            let r = svc.finish();
            (r.summary, r.trace.tasks)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn invalid_disruptions_are_rejected_with_typed_errors() {
        let mut svc = OnlineService::new(park(), 10.0, OnlineConfig::default()).unwrap();
        assert!(svc
            .inject(f64::NAN, &Disruption::BudgetShock { delta: 0.0 })
            .is_err());
        assert!(svc
            .inject(0.0, &Disruption::MachineFailure { machine: 7 })
            .is_err());
        assert!(svc
            .inject(
                0.0,
                &Disruption::SpeedDegradation {
                    machine: 0,
                    factor: 0.0
                }
            )
            .is_err());
        assert!(svc
            .inject(
                0.0,
                &Disruption::SpeedDegradation {
                    machine: 0,
                    factor: 1.5
                }
            )
            .is_err());
        svc.try_submit(&task(0, 1.0, 2.0)).unwrap();
        assert!(
            svc.inject(0.5, &Disruption::BudgetShock { delta: 0.0 })
                .is_err(),
            "the service clock only moves forward"
        );
    }

    #[test]
    fn jitter_factor_depends_only_on_seed_and_id() {
        let cfg = OnlineConfig {
            speed_jitter: 0.2,
            jitter_seed: 42,
            ..OnlineConfig::default()
        };
        let a = OnlineService::new(park(), 10.0, cfg).unwrap();
        let b = OnlineService::new(park(), 10.0, cfg).unwrap();
        for id in 0..16u64 {
            let f = a.jitter_factor(id);
            assert_eq!(f, b.jitter_factor(id));
            assert!((0.8..=1.2).contains(&f), "factor {f} out of range");
        }
    }

    #[test]
    fn preload_matches_a_same_timestamp_admit_all_burst() {
        let batch: Vec<OnlineTask> = (0..6)
            .map(|id| task(id, 0.0, 1.0 + id as f64 * 0.1))
            .collect();
        let mut bulk = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        bulk.preload(&batch).unwrap();
        let mut serial = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        for t in &batch {
            serial.try_submit(t).unwrap();
        }
        let (bulk, serial) = (bulk.finish(), serial.finish());
        assert_eq!(bulk.summary, serial.summary);
        assert_eq!(bulk.decisions, serial.decisions);
        assert_eq!(bulk.summary.solves, 1, "preload must re-plan lazily, once");
    }

    /// The byte-identity contract of the replanner redesign, end to end
    /// at the service level: under every gated policy, the `Incremental`
    /// arm's decisions, summary, ledger, and outcomes equal the `Cold`
    /// arm's — even though its tentative evaluations run through value
    /// estimates and checkpoint delta bounds.
    #[test]
    fn incremental_runs_are_byte_identical_to_cold() {
        for policy in [
            AdmissionPolicy::RejectIfInfeasible,
            AdmissionPolicy::DegradeToFit,
        ] {
            let run = |replan: ReplanStrategy| {
                let cfg = OnlineConfig {
                    policy,
                    replan,
                    ..OnlineConfig::default()
                };
                // A lean budget so the policies actually reject some
                // arrivals, across several timestamps.
                let mut svc = OnlineService::new(park(), 60.0, cfg).unwrap();
                for id in 0..8 {
                    svc.try_submit(&task(id, (id / 2) as f64 * 0.07, 0.6 + id as f64 * 0.05))
                        .unwrap();
                }
                svc.finish()
            };
            let cold = run(ReplanStrategy::Cold);
            let inc = run(ReplanStrategy::Incremental);
            assert_eq!(cold.decisions, inc.decisions, "policy {policy:?}");
            assert_eq!(cold.summary, inc.summary, "policy {policy:?}");
            assert_eq!(cold.ledger, inc.ledger, "policy {policy:?}");
            assert!(
                inc.replan.estimates + inc.replan.delta_bounds + inc.replan.cache_hits > 0,
                "the incremental arm must exercise at least one cheap path"
            );
        }
    }
}
