//! The arrival loop: rolling-horizon re-optimization with dispatch
//! commitment, admission control, and ledger-tracked energy.
//!
//! # Model
//!
//! The service owns a simulated clock driven by submissions (arrival
//! times must be non-decreasing). Between two arrivals the incumbent
//! plan governs: each machine runs its assigned pending tasks
//! back-to-back in residual-deadline (EDF) order, and every dispatch
//! whose start time falls strictly before the next arrival is
//! *committed* — the task leaves the pending pool, its planned energy is
//! committed to the ledger, and it never migrates. At the arrival the
//! pending pool (committed tasks excluded) is re-planned as a residual
//! instance ([`dsct_core::residual`]): deadlines shift to `d_j − now`,
//! the budget shrinks to the ledger's remaining joules, and the re-solve
//! goes through [`ApproxSolver`] — warm-started, under
//! [`ReplanStrategy::WarmStart`], from the incumbent's fractional
//! profile restricted to still-pending tasks.
//!
//! Machine availability is restored at plan-materialization time: tasks
//! landing on a still-busy machine are cut at their *absolute* deadline
//! (the same phase-2 cut as `DSCT-EA-APPROX`), which only shortens
//! processing times and therefore never exceeds the solved plan's
//! energy. Runtime speed jitter follows the [`dsct_exec`] model — the
//! planned allocation is a work target, a slow execution overruns and is
//! compressed or dropped per [`OverrunPolicy`] — and the jitter factor
//! of a task depends only on `(jitter_seed, id)`, never on how many
//! re-plans happened, so replays are deterministic.

use crate::admission::{AdmissionPolicy, Decision};
use crate::ledger::EnergyLedger;
use dsct_core::profile::EnergyProfile;
use dsct_core::residual::{residual_instance, ResidualItem};
use dsct_core::solver::{ApproxSolver, SolverContext};
use dsct_core::EPS_TIME;
use dsct_exec::{
    EventKind, ExecError, ExecutionConfig, ExecutionTrace, OverrunPolicy, TaskOutcome, TraceEvent,
};
use dsct_machines::MachinePark;
use dsct_workload::{ArrivalTrace, OnlineTask};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashSet, VecDeque};

/// How per-arrival re-solves are started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplanStrategy {
    /// Every re-solve runs the full cold pipeline (naive profile +
    /// transfer pass + profile search). Baseline for benchmarking.
    Cold,
    /// Re-solves start the profile search from the incumbent plan's
    /// fractional profile restricted to still-pending tasks, so the
    /// common case is a handful of incremental Δ-probes (default).
    #[default]
    WarmStart,
}

/// Configuration of an [`OnlineService`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Admission policy.
    pub policy: AdmissionPolicy,
    /// Re-solve strategy.
    pub replan: ReplanStrategy,
    /// Multiplicative speed-jitter half-width in `[0, 1)` (the
    /// [`dsct_exec`] model; `0.0` = deterministic nominal speeds).
    pub speed_jitter: f64,
    /// Seed for the per-task jitter draws.
    pub jitter_seed: u64,
    /// Deadline-overrun handling at dispatch time.
    pub overrun: OverrunPolicy,
    /// Internal-parallelism cap for the re-solves (the profile search's
    /// gate threads); `1` keeps the service single-threaded, which is
    /// what a harness running many replays in parallel wants. Results
    /// never depend on this — only wall-clock does.
    pub solver_parallelism: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            policy: AdmissionPolicy::AdmitAll,
            replan: ReplanStrategy::WarmStart,
            speed_jitter: 0.0,
            jitter_seed: 0,
            overrun: OverrunPolicy::Compress,
            solver_parallelism: 1,
        }
    }
}

impl OnlineConfig {
    fn execution_config(&self) -> ExecutionConfig {
        ExecutionConfig {
            speed_jitter: self.speed_jitter,
            seed: self.jitter_seed,
            overrun: self.overrun,
        }
    }
}

/// Deterministic aggregate of one service run (the byte-comparable
/// payload of the determinism contract: two replays of the same trace
/// and configuration produce equal summaries, bit for bit, regardless
/// of solver parallelism).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineSummary {
    /// Tasks submitted.
    pub arrivals: usize,
    /// Tasks admitted to the pending pool.
    pub admitted: usize,
    /// Tasks turned away by the admission policy.
    pub rejected: usize,
    /// Admitted tasks whose deadline passed before any dispatch.
    pub expired: usize,
    /// Admitted tasks never dispatched (plans allocated them nothing).
    pub starved: usize,
    /// Tasks actually dispatched to a machine.
    pub dispatched: usize,
    /// Re-plans adopted as the incumbent.
    pub replans: usize,
    /// Total solver invocations (incumbent re-plans plus tentative
    /// admission solves that were rejected).
    pub solves: usize,
    /// Realized total accuracy `Σ_j a_j(work_j)` over **all** arrivals
    /// (rejected/expired/starved tasks contribute their zero-work
    /// accuracy).
    pub total_accuracy: f64,
    /// Cumulative planned energy committed at dispatch time (J).
    pub committed_energy: f64,
    /// Realized (settled) energy (J).
    pub spent_energy: f64,
    /// The global budget `B` (J).
    pub budget: f64,
    /// Completion time of the last dispatched task.
    pub makespan: f64,
}

/// Everything a finished service run reports.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Execution trace in [`dsct_exec`] vocabulary: `tasks` is indexed
    /// by ascending task id (dense `0..n` ids from
    /// [`dsct_workload::generate_arrivals`] line up with the index),
    /// events are chronological, never-served tasks carry a `Dropped`
    /// event with machine `usize::MAX`.
    pub trace: ExecutionTrace,
    /// Admission decision per submitted task, in submission order.
    pub decisions: Vec<(u64, Decision)>,
    /// The deterministic summary.
    pub summary: OnlineSummary,
    /// Final ledger state.
    pub ledger: EnergyLedger,
}

/// The incumbent plan: an `ApproxSolver` solution of the residual
/// instance built at `time`, plus the residual-index → task-id mapping.
struct Plan {
    time: f64,
    task_ids: Vec<u64>,
    approx: dsct_core::approx::ApproxSolution,
}

/// One materialized (but not yet committed) dispatch.
#[derive(Debug, Clone, Copy)]
struct Queued {
    id: u64,
    duration: f64,
}

/// A committed dispatch awaiting ledger settlement at its completion.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Settle {
    time: f64,
    id: u64,
    planned_energy: f64,
    actual_energy: f64,
}

impl Eq for Settle {}
impl PartialOrd for Settle {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Settle {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.id.cmp(&self.id))
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The online scheduling service. See the module docs for the model.
pub struct OnlineService {
    cfg: OnlineConfig,
    park: MachinePark,
    ledger: EnergyLedger,
    now: f64,
    pool: Vec<OnlineTask>,
    plan: Option<Plan>,
    plan_dirty: bool,
    queues: Vec<VecDeque<Queued>>,
    free_at: Vec<f64>,
    settle: BinaryHeap<Settle>,
    outcomes: BTreeMap<u64, TaskOutcome>,
    decisions: Vec<(u64, Decision)>,
    events: Vec<TraceEvent>,
    solver: ApproxSolver,
    ctx: SolverContext,
    replans: usize,
    solves: usize,
    expired: usize,
    starved: usize,
    dispatched: usize,
    committed_energy: f64,
    makespan: f64,
}

impl OnlineService {
    /// Creates a service over a machine park and a global energy budget.
    /// Fails with [`ExecError::InvalidConfig`] when the jitter model is
    /// invalid (`speed_jitter` outside `[0, 1)`).
    pub fn new(park: MachinePark, budget: f64, cfg: OnlineConfig) -> Result<Self, ExecError> {
        cfg.execution_config().validate()?;
        let m = park.len();
        let mut ctx = SolverContext::new();
        ctx.set_parallelism_budget(cfg.solver_parallelism);
        Ok(Self {
            cfg,
            ledger: EnergyLedger::new(budget),
            now: 0.0,
            pool: Vec::new(),
            plan: None,
            plan_dirty: false,
            queues: vec![VecDeque::new(); m],
            free_at: vec![0.0; m],
            settle: BinaryHeap::new(),
            outcomes: BTreeMap::new(),
            decisions: Vec::new(),
            events: Vec::new(),
            solver: ApproxSolver::new(),
            ctx,
            replans: 0,
            solves: 0,
            expired: 0,
            starved: 0,
            dispatched: 0,
            committed_energy: 0.0,
            makespan: 0.0,
            park,
        })
    }

    /// The current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The energy ledger.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Admitted tasks currently awaiting dispatch.
    pub fn pending(&self) -> usize {
        self.pool.len()
    }

    /// Submits one arrival, advancing the clock to its arrival time
    /// (committing every dispatch the incumbent plan starts before it),
    /// running the admission policy, and — for the gated policies —
    /// adopting the tentative re-plan on admission. Under
    /// [`AdmissionPolicy::AdmitAll`] the re-plan is deferred until the
    /// clock next advances, so a batch of same-timestamp arrivals is
    /// re-planned once.
    ///
    /// # Panics
    /// Panics when arrival times are not non-decreasing.
    pub fn submit(&mut self, task: &OnlineTask) -> Decision {
        assert!(
            task.arrival >= self.now - EPS_TIME,
            "arrivals must be non-decreasing: got {} at time {}",
            task.arrival,
            self.now
        );
        if task.arrival > self.now {
            self.advance_to(task.arrival);
            self.now = task.arrival;
        }
        self.purge_expired();

        // Dead on arrival: the deadline already passed.
        if task.deadline - self.now <= EPS_TIME {
            self.record_unserved(task, self.now);
            self.decisions.push((task.id, Decision::Rejected));
            return Decision::Rejected;
        }

        let decision = match self.cfg.policy {
            AdmissionPolicy::AdmitAll => {
                self.pool.push(task.clone());
                self.plan_dirty = true;
                Decision::Admitted
            }
            policy => {
                self.ensure_plan();
                let baseline = self
                    .plan
                    .as_ref()
                    .map(|p| p.approx.total_accuracy)
                    .unwrap_or(0.0);
                let (approx, res) = self
                    .solve_pool(Some(task))
                    .expect("pool plus a live candidate is non-empty");
                self.solves += 1;
                let jc = res
                    .task_ids
                    .iter()
                    .position(|&id| id == task.id)
                    .expect("candidate is live, so it is in the residual");
                let tentative_cand = approx.schedule.accuracy(jc, &res.instance);
                let decision = policy.decide(
                    baseline,
                    approx.total_accuracy,
                    tentative_cand,
                    task.accuracy.a_min(),
                );
                if decision == Decision::Admitted {
                    self.pool.push(task.clone());
                    self.adopt(Plan {
                        time: self.now,
                        task_ids: res.task_ids,
                        approx,
                    });
                } else {
                    self.record_unserved(task, self.now);
                }
                decision
            }
        };
        self.decisions.push((task.id, decision));
        decision
    }

    /// Drains the service: commits every remaining planned dispatch,
    /// settles the ledger, records never-served tasks, and produces the
    /// report.
    pub fn finish(mut self) -> OnlineReport {
        self.advance_to(f64::INFINITY);
        // Whatever is still pooled never got machine time.
        let leftovers: Vec<OnlineTask> = std::mem::take(&mut self.pool);
        for task in &leftovers {
            self.starved += 1;
            self.record_unserved(task, self.now);
        }

        let mut events = std::mem::take(&mut self.events);
        events.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .unwrap_or(Ordering::Equal)
                .then(a.task.cmp(&b.task))
        });
        let tasks: Vec<TaskOutcome> = self.outcomes.values().cloned().collect();
        let realized_accuracy: f64 = tasks.iter().map(|t| t.accuracy).sum();
        let realized_energy: f64 = tasks.iter().map(|t| t.energy).sum();
        let compressions = events
            .iter()
            .filter(|e| e.kind == EventKind::Compressed)
            .count();
        let drops = events
            .iter()
            .filter(|e| e.kind == EventKind::Dropped)
            .count();
        let rejected = self
            .decisions
            .iter()
            .filter(|(_, d)| *d == Decision::Rejected)
            .count();
        let summary = OnlineSummary {
            arrivals: self.decisions.len(),
            admitted: self.decisions.len() - rejected,
            rejected,
            expired: self.expired,
            starved: self.starved,
            dispatched: self.dispatched,
            replans: self.replans,
            solves: self.solves,
            total_accuracy: realized_accuracy,
            committed_energy: self.committed_energy,
            spent_energy: realized_energy,
            budget: self.ledger.budget(),
            makespan: self.makespan,
        };
        OnlineReport {
            trace: ExecutionTrace {
                events,
                tasks,
                realized_accuracy,
                realized_energy,
                compressions,
                drops,
                makespan: self.makespan,
            },
            decisions: self.decisions,
            summary,
            ledger: self.ledger,
        }
    }

    // ---- internals ------------------------------------------------------

    /// Commits every planned dispatch starting strictly before `t` (in
    /// chronological order, so jitter-shifted starts cascade correctly),
    /// then settles every completion at or before `t`. Re-plans first
    /// when the pool changed since the incumbent was computed.
    fn advance_to(&mut self, t: f64) {
        if self.plan_dirty {
            self.replan();
        }
        let plan_time = self.plan.as_ref().map(|p| p.time).unwrap_or(self.now);
        loop {
            let mut best: Option<(f64, usize)> = None;
            for (r, q) in self.queues.iter().enumerate() {
                if q.front().is_some() {
                    let start = self.free_at[r].max(plan_time);
                    if best.map(|(s, _)| start < s).unwrap_or(true) {
                        best = Some((start, r));
                    }
                }
            }
            let Some((start, r)) = best else { break };
            if start >= t {
                break;
            }
            let q = self.queues[r].pop_front().expect("front checked");
            self.commit(q, r, start);
        }
        while let Some(s) = self.settle.peek() {
            if s.time <= t {
                let s = *s;
                self.settle.pop();
                self.ledger.settle(s.planned_energy, s.actual_energy);
            } else {
                break;
            }
        }
    }

    /// Commits one dispatch: draws the task's jitter factor, applies the
    /// overrun policy against the *absolute* deadline, fixes the task's
    /// outcome, and commits the planned energy.
    fn commit(&mut self, q: Queued, r: usize, start: f64) {
        let idx = self
            .pool
            .iter()
            .position(|p| p.id == q.id)
            .expect("queued tasks are pooled");
        let task = self.pool.remove(idx);
        let mach = self.park.get(r);
        let factor = self.jitter_factor(q.id);
        let planned_work = q.duration * mach.speed();
        let full_runtime = q.duration / factor;
        let time_to_deadline = (task.deadline - start).max(0.0);
        let (runtime, work, kind) = if full_runtime <= time_to_deadline + 1e-12 {
            (full_runtime, planned_work, EventKind::Finish)
        } else {
            match self.cfg.overrun {
                OverrunPolicy::Compress => (
                    time_to_deadline,
                    mach.speed() * factor * time_to_deadline,
                    EventKind::Compressed,
                ),
                OverrunPolicy::Drop => (time_to_deadline, 0.0, EventKind::Dropped),
            }
        };
        let completion = start + runtime;
        let planned_energy = q.duration * mach.power();
        let actual_energy = mach.power() * runtime;
        self.free_at[r] = completion;
        self.ledger.commit(planned_energy);
        self.committed_energy += planned_energy;
        self.settle.push(Settle {
            time: completion,
            id: q.id,
            planned_energy,
            actual_energy,
        });
        self.events.push(TraceEvent {
            time: start,
            machine: r,
            task: q.id as usize,
            kind: EventKind::Dispatch,
        });
        self.events.push(TraceEvent {
            time: completion,
            machine: r,
            task: q.id as usize,
            kind,
        });
        self.outcomes.insert(
            q.id,
            TaskOutcome {
                machine: Some(r),
                start,
                completion,
                work,
                accuracy: task.accuracy.eval(work.max(0.0)),
                energy: actual_energy,
                met_deadline: completion <= task.deadline + 1e-9,
                speed_factor: factor,
            },
        );
        self.dispatched += 1;
        self.makespan = self.makespan.max(completion);
    }

    /// Per-task jitter factor: a pure function of `(jitter_seed, id)`,
    /// independent of re-plan count and dispatch order.
    fn jitter_factor(&self, id: u64) -> f64 {
        let j = self.cfg.speed_jitter;
        if j <= 0.0 {
            return 1.0;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(splitmix64(self.cfg.jitter_seed ^ splitmix64(id)));
        1.0 + rng.gen_range(-j..=j)
    }

    /// Removes pool tasks whose deadline has passed, recording their
    /// zero-work outcome.
    fn purge_expired(&mut self) {
        let now = self.now;
        let expired: Vec<OnlineTask> = self
            .pool
            .iter()
            .filter(|p| p.deadline - now <= EPS_TIME)
            .cloned()
            .collect();
        if expired.is_empty() {
            return;
        }
        self.pool.retain(|p| p.deadline - now > EPS_TIME);
        for task in &expired {
            self.expired += 1;
            self.record_unserved(task, now);
        }
        self.plan_dirty = true;
    }

    /// Records a task that will never run (rejected / expired /
    /// starved): zero work, zero energy, its floor accuracy, and a
    /// `Dropped` marker event (machine `usize::MAX`, like the offline
    /// executor's never-dispatched convention).
    fn record_unserved(&mut self, task: &OnlineTask, time: f64) {
        self.events.push(TraceEvent {
            time,
            machine: usize::MAX,
            task: task.id as usize,
            kind: EventKind::Dropped,
        });
        self.outcomes.insert(
            task.id,
            TaskOutcome {
                machine: None,
                start: time,
                completion: time,
                work: 0.0,
                accuracy: task.accuracy.a_min(),
                energy: 0.0,
                met_deadline: true,
                speed_factor: 1.0,
            },
        );
    }

    /// Ensures the incumbent plan was solved for the current pool at the
    /// current time (the gated policies compare against it).
    fn ensure_plan(&mut self) {
        self.purge_expired();
        if self.pool.is_empty() {
            self.plan = None;
            self.plan_dirty = false;
            self.clear_queues();
            return;
        }
        let fresh = !self.plan_dirty && self.plan.as_ref().map(|p| p.time) == Some(self.now);
        if !fresh {
            self.replan();
        }
    }

    /// Re-plans the pending pool at the current time and adopts the
    /// result as the incumbent.
    fn replan(&mut self) {
        self.plan_dirty = false;
        self.purge_expired();
        if self.pool.is_empty() {
            self.plan = None;
            self.clear_queues();
            return;
        }
        let (approx, res) = self
            .solve_pool(None)
            .expect("non-empty purged pool yields a residual");
        self.solves += 1;
        self.adopt(Plan {
            time: self.now,
            task_ids: res.task_ids,
            approx,
        });
    }

    /// Solves the residual instance of the pool (plus an optional
    /// candidate) at the current time, warm-starting when configured and
    /// an incumbent exists. Returns `None` when there is nothing to
    /// schedule.
    fn solve_pool(
        &mut self,
        extra: Option<&OnlineTask>,
    ) -> Option<(
        dsct_core::approx::ApproxSolution,
        dsct_core::residual::ResidualInstance,
    )> {
        let mut items: Vec<ResidualItem> = self
            .pool
            .iter()
            .map(|p| ResidualItem {
                id: p.id,
                deadline: p.deadline,
                accuracy: p.accuracy.clone(),
            })
            .collect();
        if let Some(task) = extra {
            items.push(ResidualItem {
                id: task.id,
                deadline: task.deadline,
                accuracy: task.accuracy.clone(),
            });
        }
        let res = residual_instance(&items, self.now, &self.park, self.ledger.remaining())
            .expect("pool deadlines are validated and the budget is clamped")?;
        debug_assert!(res.expired.is_empty(), "pool purged before solving");
        let warm = self.warm_hint();
        let approx = match warm {
            Some(profile) => {
                self.solver
                    .solve_typed_warm_with(&res.instance, &mut self.ctx, &profile)
            }
            None => self.solver.solve_typed_with(&res.instance, &mut self.ctx),
        };
        Some((approx, res))
    }

    /// The warm-start hint: the incumbent's fractional profile summed
    /// over still-pending tasks (dispatched work excluded, so the hint
    /// shrinks as the plan is consumed).
    fn warm_hint(&self) -> Option<EnergyProfile> {
        if self.cfg.replan == ReplanStrategy::Cold {
            return None;
        }
        let plan = self.plan.as_ref()?;
        let fr = &plan.approx.fractional.schedule;
        let pooled: HashSet<u64> = self.pool.iter().map(|p| p.id).collect();
        let m = self.park.len();
        let mut caps = vec![0.0f64; m];
        for (j, id) in plan.task_ids.iter().enumerate() {
            if pooled.contains(id) {
                for (r, cap) in caps.iter_mut().enumerate() {
                    *cap += fr.t(j, r);
                }
            }
        }
        Some(EnergyProfile::new(caps))
    }

    /// Adopts a plan as the incumbent and materializes its dispatch
    /// queues: per machine, assigned tasks in residual (deadline) order,
    /// starting no earlier than the machine's committed work allows, cut
    /// at their absolute deadlines (the `DSCT-EA-APPROX` phase-2 cut
    /// with an availability offset). Cutting only shortens times, so the
    /// materialized plan consumes at most the solved plan's energy.
    fn adopt(&mut self, plan: Plan) {
        self.clear_queues();
        let m = self.park.len();
        let schedule = &plan.approx.schedule;
        for r in 0..m {
            let mut completion = self.free_at[r].max(plan.time);
            for (j, &id) in plan.task_ids.iter().enumerate() {
                let t = schedule.t(j, r);
                if t <= 0.0 {
                    continue;
                }
                let task = self
                    .pool
                    .iter()
                    .find(|p| p.id == id)
                    .expect("planned tasks are pooled");
                let d = task.deadline;
                let new_t = if completion + t > d {
                    (d - completion).max(0.0)
                } else {
                    t
                };
                completion += new_t;
                if new_t > 0.0 {
                    self.queues[r].push_back(Queued {
                        id,
                        duration: new_t,
                    });
                }
            }
        }
        self.replans += 1;
        self.plan = Some(plan);
        self.plan_dirty = false;
    }

    fn clear_queues(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
    }
}

/// Replays an [`ArrivalTrace`] through a fresh service: submits every
/// task in arrival order and drains. Deterministic: equal inputs produce
/// equal (bit-identical) reports, regardless of `solver_parallelism` or
/// how many threads the surrounding harness uses.
pub fn replay(trace: &ArrivalTrace, cfg: &OnlineConfig) -> Result<OnlineReport, ExecError> {
    let mut svc = OnlineService::new(trace.park.clone(), trace.budget, *cfg)?;
    for task in &trace.tasks {
        svc.submit(task);
    }
    Ok(svc.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsct_accuracy::PwlAccuracy;
    use dsct_machines::Machine;

    fn park() -> MachinePark {
        MachinePark::new(vec![
            Machine::new(2000.0, 80.0).unwrap(),
            Machine::new(5000.0, 120.0).unwrap(),
        ])
    }

    fn task(id: u64, arrival: f64, deadline: f64) -> OnlineTask {
        OnlineTask {
            id,
            arrival,
            deadline,
            accuracy: PwlAccuracy::new(&[(0.0, 0.1), (400.0, 0.6), (1200.0, 0.85)]).unwrap(),
        }
    }

    #[test]
    fn single_arrival_is_served_and_the_ledger_balances() {
        let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        assert_eq!(svc.submit(&task(0, 0.0, 1.0)), Decision::Admitted);
        let report = svc.finish();
        assert_eq!(report.summary.dispatched, 1);
        assert_eq!(report.summary.solves, 1);
        assert!(report.summary.total_accuracy > 0.1);
        // Zero jitter: actuals equal plans, nothing stays committed.
        assert!((report.ledger.spent() - report.summary.committed_energy).abs() < 1e-9);
        assert_eq!(report.ledger.committed(), 0.0);
        assert!(report.ledger.spent() <= 500.0 + 1e-9);
    }

    #[test]
    fn same_timestamp_batch_replans_once_under_admit_all() {
        let mut svc = OnlineService::new(park(), 500.0, OnlineConfig::default()).unwrap();
        for id in 0..6 {
            svc.submit(&task(id, 0.0, 1.0 + id as f64 * 0.1));
        }
        let report = svc.finish();
        assert_eq!(report.summary.arrivals, 6);
        assert_eq!(report.summary.admitted, 6);
        assert_eq!(
            report.summary.solves, 1,
            "a same-timestamp batch must be re-planned lazily, once"
        );
    }

    #[test]
    fn dead_on_arrival_tasks_are_rejected_by_every_policy() {
        for policy in [
            AdmissionPolicy::AdmitAll,
            AdmissionPolicy::RejectIfInfeasible,
            AdmissionPolicy::DegradeToFit,
        ] {
            let cfg = OnlineConfig {
                policy,
                ..OnlineConfig::default()
            };
            let mut svc = OnlineService::new(park(), 500.0, cfg).unwrap();
            svc.submit(&task(0, 0.0, 0.5));
            // Arrives at t=1 with deadline 0.8: already dead.
            assert_eq!(svc.submit(&task(1, 1.0, 0.8)), Decision::Rejected);
            let report = svc.finish();
            assert_eq!(report.summary.rejected, 1);
            assert_eq!(report.trace.tasks[1].accuracy, 0.1);
        }
    }

    #[test]
    fn rejecting_policies_never_beat_their_own_baseline_promise() {
        // Starve the budget so late arrivals cannot all be served; the
        // gated policies must still leave the run consistent.
        let cfg = OnlineConfig {
            policy: AdmissionPolicy::RejectIfInfeasible,
            ..OnlineConfig::default()
        };
        let mut svc = OnlineService::new(park(), 30.0, cfg).unwrap();
        for id in 0..5 {
            svc.submit(&task(id, id as f64 * 0.05, 0.6));
        }
        let report = svc.finish();
        assert_eq!(
            report.summary.rejected + report.summary.admitted,
            report.summary.arrivals
        );
        assert!(report.ledger.spent() <= 30.0 + 1e-9);
    }

    #[test]
    fn invalid_jitter_is_rejected_at_construction() {
        let cfg = OnlineConfig {
            speed_jitter: 1.0,
            ..OnlineConfig::default()
        };
        assert!(matches!(
            OnlineService::new(park(), 10.0, cfg),
            Err(ExecError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn jitter_factor_depends_only_on_seed_and_id() {
        let cfg = OnlineConfig {
            speed_jitter: 0.2,
            jitter_seed: 42,
            ..OnlineConfig::default()
        };
        let a = OnlineService::new(park(), 10.0, cfg).unwrap();
        let b = OnlineService::new(park(), 10.0, cfg).unwrap();
        for id in 0..16u64 {
            let f = a.jitter_factor(id);
            assert_eq!(f, b.jitter_factor(id));
            assert!((0.8..=1.2).contains(&f), "factor {f} out of range");
        }
    }
}
