//! Admission control: pluggable policies deciding whether an arriving
//! task enters the pending pool.
//!
//! The gated policies are *value-based*: decisions depend only on the
//! total planned accuracy of tentative re-solves (with and without the
//! candidate), never on schedule structure. That keeps warm-started and
//! cold re-solves agreeing on admissions — the two may land on
//! different-but-equal-value optima, and a structural criterion would
//! diverge where a value criterion does not.

use serde::{Deserialize, Serialize};

/// Slack absorbing the (tiny) value drift between warm-started and cold
/// re-solves, so borderline-free comparisons decide identically on both
/// paths.
pub(crate) const EPS_ADMIT: f64 = 1e-6;

/// Admission policy of an [`crate::OnlineService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Admit every arrival unconditionally. A task may still end up with
    /// zero work if the re-plans never allocate it any (it then realizes
    /// its zero-work accuracy, like an offline drop).
    #[default]
    AdmitAll,
    /// Admit only when the candidate gets real service *and* the planned
    /// total accuracy of the already-admitted tasks does not decrease:
    /// `V_others(with) >= V_pool(without) − ε` and
    /// `V_cand(with) >= a_min_cand + ε`. Protects the service level of
    /// admitted tasks; a new task never cannibalizes them.
    RejectIfInfeasible,
    /// Admit whenever doing so improves the *net* planned accuracy:
    /// `V(with) >= V(without) + a_min_cand + ε` — the candidate must buy
    /// more than the zero-work floor it realizes anyway on rejection.
    /// Admitted tasks may be compressed down their concave PWL curves to
    /// make room; by concavity the marginal accuracy they give up is the
    /// cheapest available.
    DegradeToFit,
}

/// The admission outcome for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// The task entered the pending pool.
    Admitted,
    /// The task was turned away; it realizes its zero-work accuracy.
    Rejected,
}

impl AdmissionPolicy {
    /// Applies the policy's value test.
    ///
    /// * `baseline` — total planned accuracy of the pool *without* the
    ///   candidate, solved at the current time;
    /// * `tentative` — total planned accuracy *with* the candidate;
    /// * `tentative_cand` — the candidate's own planned accuracy inside
    ///   the tentative solution;
    /// * `cand_floor` — the candidate's zero-work accuracy `a_j(0)`.
    pub(crate) fn decide(
        &self,
        baseline: f64,
        tentative: f64,
        tentative_cand: f64,
        cand_floor: f64,
    ) -> Decision {
        match self {
            AdmissionPolicy::AdmitAll => Decision::Admitted,
            AdmissionPolicy::RejectIfInfeasible => {
                let others = tentative - tentative_cand;
                if tentative_cand >= cand_floor + EPS_ADMIT && others >= baseline - EPS_ADMIT {
                    Decision::Admitted
                } else {
                    Decision::Rejected
                }
            }
            AdmissionPolicy::DegradeToFit => {
                if tentative >= baseline + cand_floor + EPS_ADMIT {
                    Decision::Admitted
                } else {
                    Decision::Rejected
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_all_ignores_values() {
        assert_eq!(
            AdmissionPolicy::AdmitAll.decide(10.0, 0.0, 0.0, 0.5),
            Decision::Admitted
        );
    }

    #[test]
    fn reject_if_infeasible_protects_the_pool() {
        let p = AdmissionPolicy::RejectIfInfeasible;
        // Candidate served, others intact: admit.
        assert_eq!(p.decide(5.0, 5.7, 0.7, 0.0), Decision::Admitted);
        // Candidate served but others lose 0.3: reject.
        assert_eq!(p.decide(5.0, 5.4, 0.7, 0.0), Decision::Rejected);
        // Candidate gets only its floor: reject.
        assert_eq!(p.decide(5.0, 5.0, 0.001, 0.001), Decision::Rejected);
    }

    #[test]
    fn degrade_to_fit_admits_on_net_gain() {
        let p = AdmissionPolicy::DegradeToFit;
        // Net gain 0.4 beyond the floor: admit even though others lose.
        assert_eq!(p.decide(5.0, 5.401, 0.9, 0.001), Decision::Admitted);
        // Gain below the floor the task realizes anyway: reject.
        assert_eq!(p.decide(5.0, 5.0005, 0.001, 0.001), Decision::Rejected);
    }
}
