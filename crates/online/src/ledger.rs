//! The energy ledger: committed vs. spent vs. remaining budget.

use serde::{Deserialize, Serialize};

/// Tracks the global energy budget of an online service run.
///
/// Three buckets: `spent` (settled, actual joules of finished
/// executions), `committed` (planned joules of in-flight dispatches),
/// and the implied `remaining = budget − spent − committed` that
/// re-plans and admission decisions see. On dispatch the *planned*
/// energy is committed; on completion the *actual* energy settles —
/// with runtime speed jitter the two differ, which is exactly how
/// execution feedback reaches later admission decisions: a machine that
/// ran slow (more joules than planned) shrinks the remaining budget for
/// every subsequent arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    budget: f64,
    spent: f64,
    /// Neumaier compensation term for `spent`: settlements accumulate
    /// with a compensated (Kahan–Neumaier) sum, so a long run of tiny
    /// settlements after a large one does not lose their joules to
    /// rounding — the budget comparisons in admission control stay
    /// within ~1 ulp of the exact running total.
    spent_comp: f64,
    committed: f64,
}

impl EnergyLedger {
    /// Fresh ledger over a non-negative budget.
    pub fn new(budget: f64) -> Self {
        assert!(
            budget.is_finite() && budget >= 0.0,
            "budget must be finite and non-negative, got {budget}"
        );
        Self {
            budget,
            spent: 0.0,
            spent_comp: 0.0,
            committed: 0.0,
        }
    }

    /// The total budget `B` in joules.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Actual joules of settled (finished) executions (the compensated
    /// running total).
    pub fn spent(&self) -> f64 {
        self.spent + self.spent_comp
    }

    /// Planned joules of committed, not-yet-settled dispatches.
    pub fn committed(&self) -> f64 {
        self.committed
    }

    /// Budget still available to new plans: `B − spent − committed`,
    /// clamped at zero (actual energy can overshoot planned energy under
    /// jitter, overdrawing the ledger; re-plans then see zero).
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent() - self.committed).max(0.0)
    }

    /// Commits the planned energy of a dispatch.
    pub fn commit(&mut self, planned: f64) {
        debug_assert!(planned.is_finite() && planned >= 0.0);
        self.committed += planned;
    }

    /// Settles a committed dispatch: releases its planned energy and
    /// books the actual energy as spent. The spent total accumulates
    /// with a Neumaier-compensated sum (see the `spent_comp` field).
    pub fn settle(&mut self, planned: f64, actual: f64) {
        debug_assert!(actual.is_finite() && actual >= 0.0);
        self.committed = (self.committed - planned).max(0.0);
        let sum = self.spent + actual;
        self.spent_comp += if self.spent.abs() >= actual.abs() {
            (self.spent - sum) + actual
        } else {
            (actual - sum) + self.spent
        };
        self.spent = sum;
    }

    /// Applies a budget shock: raises (or, for negative `delta`, cuts)
    /// the global budget by `delta` joules, clamping at zero. Already
    /// spent or committed energy is never refunded — a cut below the
    /// current `spent + committed` simply drives [`Self::remaining`] to
    /// zero for every later plan.
    pub fn apply_shock(&mut self, delta: f64) {
        assert!(
            delta.is_finite(),
            "budget shock must be finite, got {delta}"
        );
        self.budget = (self.budget + delta).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_then_settle_moves_energy_between_buckets() {
        let mut l = EnergyLedger::new(10.0);
        assert_eq!(l.remaining(), 10.0);
        l.commit(4.0);
        assert_eq!(l.committed(), 4.0);
        assert_eq!(l.remaining(), 6.0);
        // Ran slow: actual 5 J against 4 J planned.
        l.settle(4.0, 5.0);
        assert_eq!(l.committed(), 0.0);
        assert_eq!(l.spent(), 5.0);
        assert_eq!(l.remaining(), 5.0);
    }

    #[test]
    fn overdraft_clamps_remaining_at_zero() {
        let mut l = EnergyLedger::new(3.0);
        l.commit(3.0);
        l.settle(3.0, 4.5);
        assert_eq!(l.spent(), 4.5);
        assert_eq!(l.remaining(), 0.0);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn rejects_negative_budget() {
        EnergyLedger::new(-1.0);
    }

    #[test]
    fn budget_shocks_shift_and_clamp() {
        let mut l = EnergyLedger::new(10.0);
        l.apply_shock(5.0);
        assert_eq!(l.budget(), 15.0);
        assert_eq!(l.remaining(), 15.0);
        l.commit(4.0);
        l.apply_shock(-100.0);
        assert_eq!(l.budget(), 0.0);
        assert_eq!(l.remaining(), 0.0);
        // Committed energy survives the shock and still settles.
        l.settle(4.0, 4.0);
        assert_eq!(l.spent(), 4.0);
    }

    #[test]
    fn hundred_thousand_settlements_stay_within_1e9_of_exact() {
        // Values of the form n/1024 are exactly representable, so the
        // integer arithmetic below is the exact reference total. A naive
        // running f64 sum drifts; the compensated sum must stay within
        // 1e-9 absolute of exact after 1e5 settlements.
        let mut l = EnergyLedger::new(1e12);
        let mut exact_num: u64 = 0; // total in units of 1/1024 J
        let mut state: u64 = 0x9E37_79B9;
        for _ in 0..100_000 {
            // Deterministic LCG in [1, 2^20]: spans six orders of
            // magnitude so small settlements meet a large partial sum.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let n = (state >> 40) + 1;
            exact_num += n;
            l.settle(0.0, n as f64 / 1024.0);
        }
        let exact = exact_num as f64 / 1024.0;
        assert!(
            (l.spent() - exact).abs() < 1e-9,
            "compensated sum drifted: got {}, exact {}",
            l.spent(),
            exact
        );
    }

    #[test]
    fn compensation_recovers_tiny_settlements_after_a_large_one() {
        // 1e-8 is below the ulp of 1e8, so a naive sum absorbs none of
        // the 1e5 tiny settlements; the compensated total keeps them.
        let mut l = EnergyLedger::new(1e12);
        l.settle(0.0, 1e8);
        for _ in 0..100_000 {
            l.settle(0.0, 1e-8);
        }
        let exact = 1e8 + 1e-3;
        assert!(
            (l.spent() - exact).abs() < 1e-9,
            "tiny settlements lost: got {:.12}, exact {exact:.12}",
            l.spent()
        );
    }
}
