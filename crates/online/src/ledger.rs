//! The energy ledger: committed vs. spent vs. remaining budget.

use serde::{Deserialize, Serialize};

/// Tracks the global energy budget of an online service run.
///
/// Three buckets: `spent` (settled, actual joules of finished
/// executions), `committed` (planned joules of in-flight dispatches),
/// and the implied `remaining = budget − spent − committed` that
/// re-plans and admission decisions see. On dispatch the *planned*
/// energy is committed; on completion the *actual* energy settles —
/// with runtime speed jitter the two differ, which is exactly how
/// execution feedback reaches later admission decisions: a machine that
/// ran slow (more joules than planned) shrinks the remaining budget for
/// every subsequent arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    budget: f64,
    spent: f64,
    committed: f64,
}

impl EnergyLedger {
    /// Fresh ledger over a non-negative budget.
    pub fn new(budget: f64) -> Self {
        assert!(
            budget.is_finite() && budget >= 0.0,
            "budget must be finite and non-negative, got {budget}"
        );
        Self {
            budget,
            spent: 0.0,
            committed: 0.0,
        }
    }

    /// The total budget `B` in joules.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Actual joules of settled (finished) executions.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Planned joules of committed, not-yet-settled dispatches.
    pub fn committed(&self) -> f64 {
        self.committed
    }

    /// Budget still available to new plans: `B − spent − committed`,
    /// clamped at zero (actual energy can overshoot planned energy under
    /// jitter, overdrawing the ledger; re-plans then see zero).
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent - self.committed).max(0.0)
    }

    /// Commits the planned energy of a dispatch.
    pub fn commit(&mut self, planned: f64) {
        debug_assert!(planned.is_finite() && planned >= 0.0);
        self.committed += planned;
    }

    /// Settles a committed dispatch: releases its planned energy and
    /// books the actual energy as spent.
    pub fn settle(&mut self, planned: f64, actual: f64) {
        debug_assert!(actual.is_finite() && actual >= 0.0);
        self.committed = (self.committed - planned).max(0.0);
        self.spent += actual;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_then_settle_moves_energy_between_buckets() {
        let mut l = EnergyLedger::new(10.0);
        assert_eq!(l.remaining(), 10.0);
        l.commit(4.0);
        assert_eq!(l.committed(), 4.0);
        assert_eq!(l.remaining(), 6.0);
        // Ran slow: actual 5 J against 4 J planned.
        l.settle(4.0, 5.0);
        assert_eq!(l.committed(), 0.0);
        assert_eq!(l.spent(), 5.0);
        assert_eq!(l.remaining(), 5.0);
    }

    #[test]
    fn overdraft_clamps_remaining_at_zero() {
        let mut l = EnergyLedger::new(3.0);
        l.commit(3.0);
        l.settle(3.0, 4.5);
        assert_eq!(l.spent(), 4.5);
        assert_eq!(l.remaining(), 0.0);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn rejects_negative_budget() {
        EnergyLedger::new(-1.0);
    }
}
