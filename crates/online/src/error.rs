//! Typed errors of the online service.
//!
//! Shard extraction makes states that were "impossible" for a
//! whole-park service routine: an empty machine slice, a zero budget
//! slice, adversarial floats in drained-and-rerouted tasks. Every such
//! degenerate-but-reachable input surfaces here as a typed error
//! instead of a panic, so the sharded server can keep serving the
//! other cells.

use dsct_core::problem::ProblemError;
use dsct_exec::ExecError;
use std::fmt;

/// An error from [`crate::OnlineService`] construction or submission.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// The service was handed zero machines (an empty shard slice).
    EmptyPark,
    /// The budget slice is NaN, infinite, or negative.
    InvalidBudget(f64),
    /// A submission or clock advance would move the service clock
    /// backwards.
    NonMonotoneClock {
        /// The offending timestamp.
        at: f64,
        /// The service clock at the attempt.
        now: f64,
    },
    /// A task field is NaN or infinite (rejected before it can reach a
    /// sort or a residual solve).
    InvalidTask {
        /// Id of the offending task.
        id: u64,
        /// Name of the offending field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An invalid execution or disruption configuration.
    Exec(ExecError),
    /// The residual instance rejected the pooled state.
    Residual(ProblemError),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::EmptyPark => write!(f, "the service needs at least one machine"),
            OnlineError::InvalidBudget(b) => {
                write!(f, "budget must be finite and non-negative, got {b}")
            }
            OnlineError::NonMonotoneClock { at, now } => write!(
                f,
                "the service clock only moves forward: got {at} at time {now}"
            ),
            OnlineError::InvalidTask { id, field, value } => {
                write!(f, "task {id}: {field} must be finite, got {value}")
            }
            OnlineError::Exec(e) => write!(f, "{e}"),
            OnlineError::Residual(e) => write!(f, "residual instance rejected: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<ExecError> for OnlineError {
    fn from(e: ExecError) -> Self {
        OnlineError::Exec(e)
    }
}

impl From<ProblemError> for OnlineError {
    fn from(e: ProblemError) -> Self {
        OnlineError::Residual(e)
    }
}
