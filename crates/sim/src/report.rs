//! Plain-text tables, CSV emission, and JSON artifacts for experiment
//! results.

use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple fixed-width text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", cell, width = widths[c]);
                if c + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Renders as CSV (no quoting — cells are numeric or simple labels).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes an experiment result as pretty JSON next to its CSV rendering.
///
/// Produces `<dir>/<name>.json` and `<dir>/<name>.csv`.
pub fn write_artifacts<T: Serialize>(
    dir: &Path,
    name: &str,
    result: &T,
    table: &TextTable,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let json = serde_json::to_string_pretty(result)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(dir.join(format!("{name}.json")), json)?;
    fs::write(dir.join(format!("{name}.csv")), table.to_csv())?;
    Ok(())
}

/// Formats seconds with adaptive precision (μs → s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(["n", "time"]);
        t.row(["10", "1.0"]).row(["500", "26.2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("time"));
        assert!(lines[3].contains("500"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        TextTable::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(2.5e-6).contains("µs"));
        assert!(fmt_secs(3.1e-2).contains("ms"));
        assert!(fmt_secs(12.0).ends_with("s"));
    }

    #[test]
    fn writes_artifacts() {
        let dir = std::env::temp_dir().join("dsct_sim_report_test");
        let mut t = TextTable::new(["x"]);
        t.row(["1"]);
        #[derive(serde::Serialize)]
        struct R {
            v: u32,
        }
        write_artifacts(&dir, "unit", &R { v: 7 }, &t).unwrap();
        let json = std::fs::read_to_string(dir.join("unit.json")).unwrap();
        assert!(json.contains("7"));
        let csv = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
        assert_eq!(csv, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
