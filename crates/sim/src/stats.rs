//! Streaming summary statistics (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Mean / standard deviation / extrema of a sample, built incrementally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for SummaryStats {
    fn default() -> Self {
        Self::new()
    }
}

impl SummaryStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds the summary of a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &SummaryStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n − 1 denominator; 0 below two samples).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count as f64 - 1.0)).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval on
    /// the mean, `1.96 · s / √n` (0 below two samples).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation (NaN-free inputs assumed).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = SummaryStats::of(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std of this classic dataset: sqrt(32/7).
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let s = SummaryStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        let s = SummaryStats::of(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = SummaryStats::of(&xs);
        let mut a = SummaryStats::of(&xs[..17]);
        let b = SummaryStats::of(&xs[17..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = SummaryStats::of(&[1.0, 2.0]);
        a.merge(&SummaryStats::new());
        assert_eq!(a.count(), 2);
        let mut e = SummaryStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }
}
