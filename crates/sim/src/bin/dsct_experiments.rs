//! `dsct-experiments` — regenerates the DSCT-EA paper's tables and figures.
//!
//! ```text
//! dsct-experiments [EXPERIMENTS…] [OPTIONS]
//!
//! Experiments: all fig1 fig2 fig3 fig4 fig4a fig4b table1 fig5 fig6 fig6a
//!              fig6b energy-gain robustness online chaos staged (default: all)
//! Options:
//!   --quick        reduced sizes/replications (smoke-test scale)
//!   --seed N       base RNG seed (default: per-experiment paper seed)
//!   --out DIR      artifact directory for JSON/CSV (default: ./results)
//!   --threads N    worker threads for grid experiments (0 = all cores)
//!   --sequential   run everything serially (same as --threads 1)
//! ```
//!
//! Run `--quick` first: the full Fig. 3 / Table 1 sweeps take minutes.

use dsct_sim::experiments::{
    chaos, fig1, fig2, fig3, fig4, fig5, fig6, online, robustness, staged, table1,
};
use dsct_sim::report::{write_artifacts, TextTable};
use dsct_sim::runner::Execution;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Args {
    experiments: Vec<String>,
    quick: bool,
    seed: Option<u64>,
    out: PathBuf,
    /// Worker threads for engine-backed grid experiments (0 = all cores).
    threads: usize,
}

impl Args {
    /// Execution mode for the legacy single-loop sweeps (fig3/fig6/…).
    fn execution(&self) -> Execution {
        if self.threads == 1 {
            Execution::Sequential
        } else {
            Execution::Parallel
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut experiments = Vec::new();
    let mut quick = false;
    let mut seed = None;
    let mut out = PathBuf::from("results");
    let mut threads = 0usize;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--sequential" => threads = 1,
            "--threads" => {
                let v = iter.next().ok_or("--threads needs a value")?;
                threads = v
                    .parse::<usize>()
                    .map_err(|e| format!("bad thread count: {e}"))?;
            }
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse::<u64>().map_err(|e| format!("bad seed: {e}"))?);
            }
            "--out" => out = PathBuf::from(iter.next().ok_or("--out needs a value")?),
            "--help" | "-h" => {
                return Err("usage".to_string());
            }
            name if !name.starts_with('-') => experiments.push(name.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    Ok(Args {
        experiments,
        quick,
        seed,
        out,
        threads,
    })
}

fn usage() -> &'static str {
    "dsct-experiments [EXPERIMENTS…] [--quick] [--seed N] [--out DIR] [--threads N] [--sequential]\n\
     experiments: all fig1 fig2 fig3 fig4 fig4a fig4b table1 fig5 fig6 fig6a fig6b energy-gain robustness online chaos staged"
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e == "usage" {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let wants = |name: &str| {
        args.experiments.iter().any(|e| {
            e == "all"
                || e == name
                || (e == "fig4" && name.starts_with("fig4"))
                || (e == "fig6" && name.starts_with("fig6"))
        })
    };
    let mut failures = 0usize;
    let mut save = |name: &str, json: serde_json::Value, table: TextTable| match write_artifacts(
        &args.out, name, &json, &table,
    ) {
        Ok(()) => println!(
            "[artifacts] {}/{{{name}.json, {name}.csv}}",
            args.out.display()
        ),
        Err(e) => {
            eprintln!("[artifacts] failed to write {name}: {e}");
            failures += 1;
        }
    };

    if wants("fig1") {
        banner("Fig. 1 — GPU energy efficiency vs speed");
        let r = fig1::run();
        println!("{}", fig1::render(&r));
        save(
            "fig1",
            serde_json::to_value(&r).expect("serializable"),
            fig1::table(&r),
        );
    }
    if wants("fig2") {
        banner("Fig. 2 — accuracy vs work (exponential + 5-segment PWL)");
        let r = fig2::run(&fig2::Fig2Config::default());
        println!("{}", fig2::render(&r));
        save(
            "fig2",
            serde_json::to_value(&r).expect("serializable"),
            fig2::table(&r),
        );
    }
    if wants("fig3") {
        banner("Fig. 3 — optimality gap vs task heterogeneity");
        let mut cfg = if args.quick {
            fig3::Fig3Config::quick()
        } else {
            fig3::Fig3Config::default()
        };
        if let Some(s) = args.seed {
            cfg.base_seed = s;
        }
        let r = fig3::run(&cfg, args.execution());
        println!("{}", fig3::render(&r));
        save(
            "fig3",
            serde_json::to_value(&r).expect("serializable"),
            fig3::table(&r),
        );
    }
    if wants("fig4a") || wants("fig4b") {
        banner("Fig. 4 — runtime: DSCT-EA-APPROX vs MIP (time-limited)");
        let mut cfg = if args.quick {
            fig4::Fig4Config::quick()
        } else {
            fig4::Fig4Config::default()
        };
        if let Some(s) = args.seed {
            cfg.base_seed = s;
        }
        let r = fig4::run(&cfg);
        println!("{}", fig4::render(&r));
        save(
            "fig4",
            serde_json::to_value(&r).expect("serializable"),
            fig4::table(&r),
        );
    }
    if wants("table1") {
        banner("Table 1 — DSCT-EA-FR-OPT vs LP solver runtimes");
        let mut cfg = if args.quick {
            table1::Table1Config::quick()
        } else {
            table1::Table1Config::default()
        };
        if let Some(s) = args.seed {
            cfg.base_seed = s;
        }
        let r = table1::run(&cfg);
        println!("{}", table1::render(&r));
        save(
            "table1",
            serde_json::to_value(&r).expect("serializable"),
            table1::table(&r),
        );
    }
    if wants("fig5") || wants("energy-gain") {
        banner("Fig. 5 — accuracy vs energy-budget ratio (+ energy gain)");
        let mut cfg = if args.quick {
            fig5::Fig5Config::quick()
        } else {
            fig5::Fig5Config::default()
        };
        if let Some(s) = args.seed {
            cfg.base_seed = s;
        }
        let r = fig5::run(&cfg, args.threads);
        println!("{}", fig5::render(&r));
        save(
            "fig5",
            serde_json::to_value(&r).expect("serializable"),
            fig5::table(&r),
        );
    }
    if wants("robustness") {
        banner("Extension — realized accuracy under runtime speed jitter");
        let mut cfg = if args.quick {
            robustness::RobustnessConfig::quick()
        } else {
            robustness::RobustnessConfig::default()
        };
        if let Some(s) = args.seed {
            cfg.base_seed = s;
        }
        let r = robustness::run(&cfg, args.execution());
        println!("{}", robustness::render(&r));
        save(
            "robustness",
            serde_json::to_value(&r).expect("serializable"),
            robustness::table(&r),
        );
    }
    if wants("online") {
        banner("Extension — online arrival service: regret vs clairvoyant FR-OPT");
        let mut cfg = if args.quick {
            online::OnlineExpConfig::quick()
        } else {
            online::OnlineExpConfig::default()
        };
        if let Some(s) = args.seed {
            cfg.base_seed = s;
        }
        let r = online::run(&cfg, args.threads);
        println!("{}", online::render(&r));
        save(
            "online",
            serde_json::to_value(&r).expect("serializable"),
            online::table(&r),
        );
    }
    if wants("staged") {
        banner("Extension — staged solver over DAG depth × operating points");
        let mut cfg = if args.quick {
            staged::StagedExpConfig::quick()
        } else {
            staged::StagedExpConfig::default()
        };
        if let Some(s) = args.seed {
            cfg.base_seed = s;
        }
        let r = staged::run(&cfg, args.execution());
        println!("{}", staged::render(&r));
        save(
            "staged",
            serde_json::to_value(&r).expect("serializable"),
            staged::table(&r),
        );
    }
    if wants("chaos") {
        banner("Extension — accuracy retention under deterministic fault injection");
        let mut cfg = if args.quick {
            chaos::ChaosExpConfig::quick()
        } else {
            chaos::ChaosExpConfig::default()
        };
        if let Some(s) = args.seed {
            cfg.base_seed = s;
        }
        let r = chaos::run(&cfg, args.threads);
        println!("{}", chaos::render(&r));
        save(
            "chaos",
            serde_json::to_value(&r).expect("serializable"),
            chaos::table(&r),
        );
    }
    for (name, scenario) in [
        ("fig6a", fig6::Fig6Scenario::UniformTasks),
        ("fig6b", fig6::Fig6Scenario::EarliestHighEfficient),
    ] {
        if wants(name) {
            banner(&format!("Fig. 6 ({name}) — two-machine energy profiles"));
            let mut cfg = if args.quick {
                fig6::Fig6Config::quick(scenario)
            } else {
                fig6::Fig6Config::paper(scenario)
            };
            if let Some(s) = args.seed {
                cfg.base_seed = s;
            }
            let r = fig6::run(&cfg, args.execution());
            println!("{}", fig6::render(&r));
            save(
                name,
                serde_json::to_value(&r).expect("serializable"),
                fig6::table(&r),
            );
        }
    }

    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}
