//! The multi-threaded deterministic experiment engine.
//!
//! An experiment is a grid of cells (instance configurations), a set of
//! [`Solver`]s, and a replication count. The engine flattens the grid
//! into (cell × replication × solver) *work items*, executes them on a
//! pool of scoped worker threads, and aggregates per-cell statistics —
//! with three properties the naive rayon loop of [`crate::runner`] lacks:
//!
//! - **Determinism under any thread count.** Each item's RNG seed is
//!   derived by [`derive_seed`] (splitmix64 mixing) from
//!   `(master_seed, cell_id, rep_id)` alone — never from thread identity
//!   or execution order. Results land in a slot array indexed by item id,
//!   and per-cell aggregates are folded in item-id order, so the
//!   [`ExperimentRun::cells`] section is bit-identical whether the run
//!   used 1 thread or 64. (Wall-clock fields — solve times, time-limit
//!   hits — live in separate, explicitly nondeterministic sections.)
//! - **Work distribution.** Workers self-schedule from a shared injector:
//!   an atomic cursor over the frozen item list. Any idle worker claims
//!   the next unclaimed item, so a slow cell (one 60 s MIP solve) never
//!   blocks progress on the rest of the grid — the same load-balancing a
//!   work-stealing deque provides, without per-worker local queues,
//!   which coarse-grained items do not need.
//! - **Workspace reuse.** Each worker owns one [`SolverContext`], so the
//!   value-function probe cache amortizes across all items the worker
//!   executes ([`dsct_core::algo_naive::ValueFnWorkspace`]).
//!
//! Aggregates stream out as cells complete: the ordered collector holds
//! back per-item results until a cell's last item arrives, then folds and
//! emits that cell's [`CellSummary`] (see [`ExperimentPlan::run_streaming`]).

use crate::stats::SummaryStats;
use dsct_core::solver::{SolveError, Solver, SolverContext};
use dsct_lp::Status;
use dsct_mip::MipStatus;
use dsct_workload::{generate, InstanceConfig};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// splitmix64 finalizer: a bijective avalanche mix on `u64`.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives one work item's RNG seed from the run's master seed and the
/// item's grid coordinates. Every solver of a `(cell, rep)` pair receives
/// the same seed — they must judge the *same* generated instance — and
/// the seed is a pure function of the coordinates, which is what makes
/// the engine deterministic under any scheduling of the items.
pub fn derive_seed(master_seed: u64, cell_id: u64, rep_id: u64) -> u64 {
    let a = splitmix64(master_seed);
    let b = splitmix64(a ^ cell_id.wrapping_mul(0xA24B_AED4_963E_E407));
    splitmix64(b ^ rep_id.wrapping_mul(0x9FB2_1C65_1E98_DF25))
}

/// One grid cell: an instance configuration plus the subset of the plan's
/// solvers to run on it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellSpec {
    /// Display label (e.g. `"n=100"` or `"beta=0.3"`).
    pub label: String,
    /// Workload configuration the cell's instances are generated from.
    pub config: InstanceConfig,
    /// Indices into [`ExperimentPlan::solvers`] to run on this cell;
    /// `None` runs all of them. (Fig. 4 uses this to stop attempting the
    /// MIP beyond its size caps.)
    pub solvers: Option<Vec<usize>>,
}

impl CellSpec {
    /// Cell running every solver of the plan.
    pub fn new(label: impl Into<String>, config: InstanceConfig) -> Self {
        Self {
            label: label.into(),
            config,
            solvers: None,
        }
    }

    /// Cell restricted to a subset of the plan's solvers.
    pub fn with_solvers(
        label: impl Into<String>,
        config: InstanceConfig,
        solvers: Vec<usize>,
    ) -> Self {
        Self {
            label: label.into(),
            config,
            solvers: Some(solvers),
        }
    }

    fn active_solvers(&self, total: usize) -> Vec<usize> {
        match &self.solvers {
            Some(list) => list.clone(),
            None => (0..total).collect(),
        }
    }
}

/// A full experiment: grid + solver set + replication count + thread
/// budget.
pub struct ExperimentPlan {
    /// The grid cells.
    pub cells: Vec<CellSpec>,
    /// The solver set; cells reference solvers by index.
    pub solvers: Vec<Arc<dyn Solver>>,
    /// Replications per (cell, solver).
    pub replications: usize,
    /// Worker threads: `0` = all available cores, `1` = run inline on the
    /// calling thread (use for wall-clock timing studies, where worker
    /// contention would pollute the measurements).
    pub threads: usize,
    /// Master seed every item seed is derived from.
    pub master_seed: u64,
    /// Retain the per-item measurements in [`ExperimentRun::items`]
    /// (needed by drivers that pair solvers per replication, e.g.
    /// Table 1's FR-vs-LP agreement gap).
    pub keep_items: bool,
}

impl ExperimentPlan {
    /// Plan with one replication, all cores, master seed 0.
    pub fn new(cells: Vec<CellSpec>, solvers: Vec<Arc<dyn Solver>>) -> Self {
        Self {
            cells,
            solvers,
            replications: 1,
            threads: 0,
            master_seed: 0,
            keep_items: false,
        }
    }

    /// Sets the replication count.
    pub fn replications(mut self, replications: usize) -> Self {
        self.replications = replications;
        self
    }

    /// Sets the thread budget (see [`ExperimentPlan::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the master seed.
    pub fn master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Retains per-item measurements on the run.
    pub fn keep_items(mut self, keep: bool) -> Self {
        self.keep_items = keep;
        self
    }
}

/// Deterministic measurements of one work item (one solver on one
/// generated instance). Everything here is a pure function of the
/// instance and the solver's options — no wall-clock state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemMeasure {
    /// Total accuracy, or `None` when the solve failed.
    pub total_accuracy: Option<f64>,
    /// Energy consumed (J).
    pub energy: Option<f64>,
    /// Tasks assigned to a machine.
    pub scheduled: Option<usize>,
    /// Upper bound certified by the solve, when the solver produces one.
    pub upper_bound: Option<f64>,
    /// The instance's maximum achievable total accuracy `Σ_j a_j^max`
    /// (normalization denominator for optimality-gap reporting).
    pub max_accuracy: f64,
    /// Tasks in the instance (per-task accuracy normalization).
    pub num_tasks: usize,
    /// Error rendering when the solve failed.
    pub error: Option<String>,
}

/// One retained work-item record (only with [`ExperimentPlan::keep_items`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemRecord {
    /// Cell index.
    pub cell: usize,
    /// Replication index.
    pub rep: usize,
    /// Solver index.
    pub solver: usize,
    /// Seed the instance was generated from.
    pub seed: u64,
    /// The deterministic measurements.
    pub measure: ItemMeasure,
    /// Wall-clock solve time (seconds; nondeterministic).
    pub solve_time: f64,
    /// Whether the solve stopped on a wall-clock limit (nondeterministic).
    pub timed_out: bool,
}

/// Per-cell, per-solver aggregate statistics (deterministic section).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverCellStats {
    /// Solver index in the plan.
    pub solver: usize,
    /// Solver display name.
    pub name: String,
    /// Total accuracy across successful replications.
    pub accuracy: SummaryStats,
    /// Mean per-task accuracy (total / n) across successful replications.
    pub mean_accuracy: SummaryStats,
    /// Energy consumed across successful replications.
    pub energy: SummaryStats,
    /// Certified upper bound (solvers that produce one).
    pub upper_bound: SummaryStats,
    /// Scheduled-task count across successful replications.
    pub scheduled: SummaryStats,
    /// Replications whose solve failed.
    pub failures: usize,
    /// Distinct error renderings observed (at most one kept per kind,
    /// in first-occurrence-by-replication order).
    pub errors: Vec<String>,
}

/// Per-cell aggregates (deterministic section of an [`ExperimentRun`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Cell index in the plan.
    pub cell: usize,
    /// Cell label.
    pub label: String,
    /// Instance maximum total accuracy across replications.
    pub max_accuracy: SummaryStats,
    /// One entry per active solver, in solver-index order.
    pub solvers: Vec<SolverCellStats>,
}

/// Per-cell, per-solver wall-clock statistics (nondeterministic section).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverCellTiming {
    /// Solver index in the plan.
    pub solver: usize,
    /// Solve time over all replications (seconds).
    pub solve_time: SummaryStats,
    /// Replications that stopped on a wall-clock limit (with or without
    /// a usable incumbent).
    pub timeouts: usize,
}

/// Wall-clock statistics of one cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellTiming {
    /// Cell index in the plan.
    pub cell: usize,
    /// One entry per active solver, in solver-index order.
    pub solvers: Vec<SolverCellTiming>,
}

/// Whole-run timing of one solver across every cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverTiming {
    /// Solver display name.
    pub name: String,
    /// Items executed.
    pub solves: usize,
    /// Failed items.
    pub failures: usize,
    /// Total wall-clock time inside `solve` calls (seconds).
    pub total_time: f64,
}

/// Utilization counters of one worker thread.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Items the worker executed.
    pub items: usize,
    /// Seconds the worker spent executing items (vs. idle/stealing).
    pub busy_time: f64,
    /// Value-function probes issued through the worker's context.
    pub probes: u64,
}

/// The result of running an [`ExperimentPlan`].
///
/// [`ExperimentRun::cells`] (and [`ExperimentRun::items`], when kept) are
/// deterministic: bit-identical across runs with the same plan regardless
/// of thread count, as long as every solver's output is a pure function
/// of the instance (true for FR-OPT, APPROX, EDF, and limit-free LP/MIP;
/// a wall-clock time limit makes the LP/MIP *status* scheduling-
/// dependent). The timing and worker sections are wall-clock by nature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRun {
    /// Master seed the run was derived from.
    pub master_seed: u64,
    /// Replications per (cell, solver).
    pub replications: usize,
    /// Worker threads actually used.
    pub threads_used: usize,
    /// Per-cell aggregates, in cell order (deterministic).
    pub cells: Vec<CellSummary>,
    /// Per-cell wall-clock statistics, in cell order.
    pub cell_timing: Vec<CellTiming>,
    /// Per-solver whole-run timing, in solver order.
    pub solver_timing: Vec<SolverTiming>,
    /// Per-worker utilization counters.
    pub workers: Vec<WorkerStats>,
    /// Retained per-item records (with [`ExperimentPlan::keep_items`]),
    /// in item order: cells × replications × active solvers.
    pub items: Option<Vec<ItemRecord>>,
    /// Wall-clock time of the whole run (seconds).
    pub wall_time: f64,
}

/// A frozen work item: everything a worker needs, precomputed.
struct WorkItem {
    cell: usize,
    rep: usize,
    solver: usize,
    seed: u64,
}

/// What a worker sends back per item.
struct ItemOutput {
    measure: ItemMeasure,
    solve_time: f64,
    timed_out: bool,
}

fn execute_item(
    item: &WorkItem,
    cells: &[CellSpec],
    solvers: &[Arc<dyn Solver>],
    ctx: &mut SolverContext,
) -> ItemOutput {
    let inst = generate(&cells[item.cell].config, item.seed);
    let solver = &solvers[item.solver];
    let t0 = Instant::now();
    let result = solver.solve_with(&inst, ctx);
    let solve_time = t0.elapsed().as_secs_f64();
    let timed_out = match &result {
        Ok(sol) => sol.stats.timed_out,
        Err(SolveError::LpNotOptimal(Status::TimeLimit)) => true,
        Err(SolveError::NoIncumbent(MipStatus::TimeLimit)) => true,
        Err(_) => false,
    };
    let measure = match result {
        Ok(sol) => ItemMeasure {
            total_accuracy: Some(sol.total_accuracy),
            energy: Some(sol.energy),
            scheduled: Some(sol.assignment.iter().filter(|a| a.is_some()).count()),
            upper_bound: sol.upper_bound,
            max_accuracy: inst.total_max_accuracy(),
            num_tasks: inst.num_tasks(),
            error: None,
        },
        Err(e) => ItemMeasure {
            total_accuracy: None,
            energy: None,
            scheduled: None,
            upper_bound: None,
            max_accuracy: inst.total_max_accuracy(),
            num_tasks: inst.num_tasks(),
            error: Some(e.to_string()),
        },
    };
    ItemOutput {
        measure,
        solve_time,
        timed_out,
    }
}

impl ExperimentPlan {
    /// Runs the plan. See [`ExperimentRun`] for the determinism contract.
    pub fn run(&self) -> ExperimentRun {
        self.run_streaming(|_| {})
    }

    /// Runs the plan, invoking `on_cell` with each cell's aggregate as
    /// soon as its last item completes (completion order, not cell
    /// order — a progress hook, not an ordering guarantee; the returned
    /// [`ExperimentRun::cells`] is always in cell order).
    pub fn run_streaming(&self, mut on_cell: impl FnMut(&CellSummary)) -> ExperimentRun {
        let t_run = Instant::now();
        let threads = match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            t => t,
        };

        // Freeze the item list: cells × replications × active solvers.
        // Item order is the canonical aggregation order.
        let mut items: Vec<WorkItem> = Vec::new();
        let mut cell_first_item: Vec<usize> = Vec::with_capacity(self.cells.len());
        for (c, cell) in self.cells.iter().enumerate() {
            cell_first_item.push(items.len());
            for rep in 0..self.replications {
                let seed = derive_seed(self.master_seed, c as u64, rep as u64);
                for s in cell.active_solvers(self.solvers.len()) {
                    assert!(s < self.solvers.len(), "cell {c} references solver {s}");
                    items.push(WorkItem {
                        cell: c,
                        rep,
                        solver: s,
                        seed,
                    });
                }
            }
        }

        let mut slots: Vec<Option<ItemOutput>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        let mut workers: Vec<WorkerStats> = Vec::new();

        if threads <= 1 || items.len() <= 1 {
            // Inline serial path: the timing-study configuration, and the
            // baseline the parallel path must be bit-identical to. The
            // solver may use its full internal parallelism here (no
            // budget), since no engine workers compete for cores.
            let mut ctx = SolverContext::new();
            let t0 = Instant::now();
            for (i, item) in items.iter().enumerate() {
                slots[i] = Some(execute_item(item, &self.cells, &self.solvers, &mut ctx));
            }
            workers.push(WorkerStats {
                worker: 0,
                items: items.len(),
                busy_time: t0.elapsed().as_secs_f64(),
                probes: ctx.probe_stats().probes,
            });
        } else {
            // Shared injector: an atomic cursor over the frozen items.
            let injector = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, ItemOutput)>();
            let items_ref = &items;
            let cells_ref = &self.cells;
            let solvers_ref = &self.solvers;
            let injector_ref = &injector;
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for w in 0..threads {
                    let tx = tx.clone();
                    handles.push(scope.spawn(move || {
                        let mut ctx = SolverContext::new();
                        // Engine workers already saturate the cores:
                        // forbid nested solver parallelism (results are
                        // identical either way; see SolverContext).
                        ctx.set_parallelism_budget(1);
                        let mut executed = 0usize;
                        let mut busy = 0.0f64;
                        loop {
                            let i = injector_ref.fetch_add(1, Ordering::Relaxed);
                            if i >= items_ref.len() {
                                break;
                            }
                            let t0 = Instant::now();
                            let out = execute_item(&items_ref[i], cells_ref, solvers_ref, &mut ctx);
                            busy += t0.elapsed().as_secs_f64();
                            executed += 1;
                            if tx.send((i, out)).is_err() {
                                break; // collector gone: shut down
                            }
                        }
                        WorkerStats {
                            worker: w,
                            items: executed,
                            busy_time: busy,
                            probes: ctx.probe_stats().probes,
                        }
                    }));
                }
                drop(tx);
                // Ordered collector with per-cell hold-back: store each
                // result by item id; when a cell's last item lands, its
                // aggregate can stream out immediately.
                let mut remaining: Vec<usize> = vec![0; self.cells.len()];
                for item in items_ref {
                    remaining[item.cell] += 1;
                }
                for (i, out) in rx {
                    let cell = items_ref[i].cell;
                    slots[i] = Some(out);
                    remaining[cell] -= 1;
                    if remaining[cell] == 0 {
                        let summary = summarize_cell(
                            cell,
                            &self.cells[cell],
                            items_ref,
                            &slots,
                            &self.solvers,
                            cell_first_item[cell],
                        );
                        on_cell(&summary);
                    }
                }
                for h in handles {
                    workers.push(h.join().expect("worker panicked"));
                }
            });
            workers.sort_by_key(|w| w.worker);
        }

        // Fold the final (canonical, cell-ordered) aggregates from the
        // slot array — identical no matter which worker filled each slot.
        let mut cells_out = Vec::with_capacity(self.cells.len());
        let mut timing_out = Vec::with_capacity(self.cells.len());
        for (c, cell) in self.cells.iter().enumerate() {
            let summary =
                summarize_cell(c, cell, &items, &slots, &self.solvers, cell_first_item[c]);
            if threads <= 1 || items.len() <= 1 {
                on_cell(&summary);
            }
            cells_out.push(summary);
            timing_out.push(time_cell(
                c,
                cell,
                &items,
                &slots,
                self.solvers.len(),
                cell_first_item[c],
            ));
        }
        let mut solver_timing: Vec<SolverTiming> = self
            .solvers
            .iter()
            .map(|s| SolverTiming {
                name: s.name().to_string(),
                solves: 0,
                failures: 0,
                total_time: 0.0,
            })
            .collect();
        for (item, slot) in items.iter().zip(&slots) {
            let out = slot.as_ref().expect("all items executed");
            let t = &mut solver_timing[item.solver];
            t.solves += 1;
            t.total_time += out.solve_time;
            if out.measure.error.is_some() {
                t.failures += 1;
            }
        }
        let retained = self.keep_items.then(|| {
            items
                .iter()
                .zip(&slots)
                .map(|(item, slot)| {
                    let out = slot.as_ref().expect("all items executed");
                    ItemRecord {
                        cell: item.cell,
                        rep: item.rep,
                        solver: item.solver,
                        seed: item.seed,
                        measure: out.measure.clone(),
                        solve_time: out.solve_time,
                        timed_out: out.timed_out,
                    }
                })
                .collect()
        });

        ExperimentRun {
            master_seed: self.master_seed,
            replications: self.replications,
            threads_used: threads.min(items.len().max(1)),
            cells: cells_out,
            cell_timing: timing_out,
            solver_timing,
            workers,
            items: retained,
            wall_time: t_run.elapsed().as_secs_f64(),
        }
    }
}

/// Folds one cell's aggregate from the slot array, scanning the cell's
/// contiguous item range in item-id order (= replication-major, solver-
/// minor) — the canonical order that makes the fold deterministic.
fn summarize_cell(
    cell_idx: usize,
    cell: &CellSpec,
    items: &[WorkItem],
    slots: &[Option<ItemOutput>],
    solvers: &[Arc<dyn Solver>],
    first_item: usize,
) -> CellSummary {
    let active = cell.active_solvers(solvers.len());
    let mut per_solver: Vec<SolverCellStats> = active
        .iter()
        .map(|&s| SolverCellStats {
            solver: s,
            name: solvers[s].name().to_string(),
            accuracy: SummaryStats::new(),
            mean_accuracy: SummaryStats::new(),
            energy: SummaryStats::new(),
            upper_bound: SummaryStats::new(),
            scheduled: SummaryStats::new(),
            failures: 0,
            errors: Vec::new(),
        })
        .collect();
    let mut max_accuracy = SummaryStats::new();
    let mut i = first_item;
    while i < items.len() && items[i].cell == cell_idx {
        let item = &items[i];
        let out = slots[i].as_ref().expect("cell complete");
        let stats = per_solver
            .iter_mut()
            .find(|p| p.solver == item.solver)
            .expect("active solver");
        let m = &out.measure;
        if item.solver == active[0] {
            max_accuracy.push(m.max_accuracy);
        }
        match m.total_accuracy {
            Some(acc) => {
                stats.accuracy.push(acc);
                stats.mean_accuracy.push(acc / m.num_tasks.max(1) as f64);
            }
            None => {
                stats.failures += 1;
                if let Some(e) = &m.error {
                    if !stats.errors.contains(e) {
                        stats.errors.push(e.clone());
                    }
                }
            }
        }
        if let Some(e) = m.energy {
            stats.energy.push(e);
        }
        if let Some(ub) = m.upper_bound {
            stats.upper_bound.push(ub);
        }
        if let Some(s) = m.scheduled {
            stats.scheduled.push(s as f64);
        }
        i += 1;
    }
    CellSummary {
        cell: cell_idx,
        label: cell.label.clone(),
        max_accuracy,
        solvers: per_solver,
    }
}

/// Folds one cell's wall-clock statistics (nondeterministic section).
fn time_cell(
    cell_idx: usize,
    cell: &CellSpec,
    items: &[WorkItem],
    slots: &[Option<ItemOutput>],
    num_solvers: usize,
    first_item: usize,
) -> CellTiming {
    let active = cell.active_solvers(num_solvers);
    let mut per_solver: Vec<SolverCellTiming> = active
        .iter()
        .map(|&s| SolverCellTiming {
            solver: s,
            solve_time: SummaryStats::new(),
            timeouts: 0,
        })
        .collect();
    let mut i = first_item;
    while i < items.len() && items[i].cell == cell_idx {
        let item = &items[i];
        let out = slots[i].as_ref().expect("cell complete");
        let timing = per_solver
            .iter_mut()
            .find(|p| p.solver == item.solver)
            .expect("active solver");
        timing.solve_time.push(out.solve_time);
        if out.timed_out {
            timing.timeouts += 1;
        }
        i += 1;
    }
    CellTiming {
        cell: cell_idx,
        solvers: per_solver,
    }
}

impl ExperimentRun {
    /// The summary of cell `c` for solver index `s` (when active there).
    pub fn solver_stats(&self, c: usize, s: usize) -> Option<&SolverCellStats> {
        self.cells.get(c)?.solvers.iter().find(|p| p.solver == s)
    }

    /// The wall-clock stats of cell `c` for solver index `s`.
    pub fn solver_timing_at(&self, c: usize, s: usize) -> Option<&SolverCellTiming> {
        self.cell_timing
            .get(c)?
            .solvers
            .iter()
            .find(|p| p.solver == s)
    }

    /// Worker utilization: mean busy fraction across workers (busy time
    /// over the run's wall-clock time).
    pub fn mean_utilization(&self) -> f64 {
        if self.workers.is_empty() || self.wall_time <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.workers.iter().map(|w| w.busy_time).sum();
        (busy / (self.workers.len() as f64 * self.wall_time)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsct_core::solver::{ApproxSolver, EdfSolver, FrOptSolver};
    use dsct_workload::{MachineConfig, TaskConfig, ThetaDistribution};

    fn small_grid(betas: &[f64]) -> Vec<CellSpec> {
        betas
            .iter()
            .map(|&beta| {
                CellSpec::new(
                    format!("beta={beta:.1}"),
                    InstanceConfig {
                        tasks: TaskConfig::paper(
                            8,
                            ThetaDistribution::Uniform { min: 0.2, max: 1.0 },
                        ),
                        machines: MachineConfig::paper_random(2),
                        rho: 0.4,
                        beta,
                    },
                )
            })
            .collect()
    }

    fn solvers() -> Vec<Arc<dyn Solver>> {
        vec![
            Arc::new(ApproxSolver::new()),
            Arc::new(EdfSolver::no_compression()),
            Arc::new(EdfSolver::three_levels()),
        ]
    }

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        let mk = |threads| {
            ExperimentPlan::new(small_grid(&[0.2, 0.5, 0.9]), solvers())
                .replications(3)
                .master_seed(11)
                .threads(threads)
                .keep_items(true)
                .run()
        };
        let serial = mk(1);
        let parallel = mk(4);
        assert_eq!(serial.cells, parallel.cells);
        // Items carry wall-clock solve times; compare measures only.
        let ms = |r: &ExperimentRun| -> Vec<ItemMeasure> {
            r.items
                .as_ref()
                .unwrap()
                .iter()
                .map(|i| i.measure.clone())
                .collect()
        };
        assert_eq!(ms(&serial), ms(&parallel));
        assert_eq!(serial.workers.len(), 1);
        assert_eq!(parallel.workers.len(), 4);
        let executed: usize = parallel.workers.iter().map(|w| w.items).sum();
        assert_eq!(executed, 3 * 3 * 3);
    }

    #[test]
    fn seeds_depend_only_on_coordinates() {
        let a = derive_seed(7, 3, 5);
        assert_eq!(a, derive_seed(7, 3, 5));
        assert_ne!(a, derive_seed(7, 3, 6));
        assert_ne!(a, derive_seed(7, 4, 5));
        assert_ne!(a, derive_seed(8, 3, 5));
    }

    #[test]
    fn solver_masks_restrict_cells() {
        let mut cells = small_grid(&[0.3, 0.6]);
        cells[1].solvers = Some(vec![1]);
        let run = ExperimentPlan::new(cells, solvers())
            .replications(2)
            .threads(2)
            .run();
        assert_eq!(run.cells[0].solvers.len(), 3);
        assert_eq!(run.cells[1].solvers.len(), 1);
        assert_eq!(run.cells[1].solvers[0].solver, 1);
        // Solver 0 ran only on cell 0: 2 replications.
        assert_eq!(run.solver_timing[0].solves, 2);
        assert_eq!(run.solver_timing[1].solves, 4);
    }

    #[test]
    fn streaming_emits_every_cell_once() {
        let mut seen = Vec::new();
        let run = ExperimentPlan::new(small_grid(&[0.2, 0.5, 0.8]), solvers())
            .replications(2)
            .threads(3)
            .run_streaming(|cell| seen.push(cell.cell));
        assert_eq!(run.cells.len(), 3);
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn chain_ordering_holds_in_aggregates() {
        let run = ExperimentPlan::new(
            small_grid(&[0.4]),
            vec![
                Arc::new(FrOptSolver::new()) as Arc<dyn Solver>,
                Arc::new(ApproxSolver::new()),
                Arc::new(EdfSolver::three_levels()),
            ],
        )
        .replications(4)
        .master_seed(3)
        .run();
        let cell = &run.cells[0];
        let fr = &cell.solvers[0];
        let approx = &cell.solvers[1];
        let edf = &cell.solvers[2];
        assert_eq!(fr.failures, 0);
        assert!(approx.accuracy.mean() <= fr.accuracy.mean() + 1e-9);
        assert!(edf.accuracy.mean() <= fr.accuracy.mean() + 1e-9);
        assert!(cell.max_accuracy.mean() >= fr.accuracy.mean() - 1e-9);
    }
}
