//! Parallel replication engine.
//!
//! Every experiment data point aggregates many independent replications
//! (the paper uses 100 for Fig. 3, 10 for the timing studies). Replications
//! differ only by seed, so they map cleanly onto a rayon parallel iterator;
//! a sequential path is kept for the parallel-vs-sequential ablation bench
//! and for timing experiments (wall-clock measurements must not contend
//! for cores).

use rayon::prelude::*;

/// How replications are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// Work-stealing parallelism over replications (default).
    #[default]
    Parallel,
    /// One after another on the calling thread (for timing studies).
    Sequential,
}

/// Runs `f` for the seeds `base_seed..base_seed + replications`, collecting
/// results in seed order (deterministic regardless of execution mode).
pub fn run_replications<T, F>(
    base_seed: u64,
    replications: usize,
    execution: Execution,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let seeds: Vec<u64> = (0..replications as u64).map(|i| base_seed + i).collect();
    match execution {
        Execution::Parallel => seeds.par_iter().map(|&s| f(s)).collect(),
        Execution::Sequential => seeds.iter().map(|&s| f(s)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_seed_order() {
        let out = run_replications(10, 8, Execution::Parallel, |seed| seed * 2);
        assert_eq!(out, vec![20, 22, 24, 26, 28, 30, 32, 34]);
        let seq = run_replications(10, 8, Execution::Sequential, |seed| seed * 2);
        assert_eq!(out, seq);
    }

    #[test]
    fn zero_replications() {
        let out: Vec<u64> = run_replications(0, 0, Execution::Parallel, |s| s);
        assert!(out.is_empty());
    }
}
