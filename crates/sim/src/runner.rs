//! Parallel replication engine (single-loop sweeps).
//!
//! Every experiment data point aggregates many independent replications
//! (the paper uses 100 for Fig. 3, 10 for the timing studies). Replications
//! differ only by seed, so they map cleanly onto a rayon parallel iterator;
//! a sequential path is kept for the parallel-vs-sequential ablation bench
//! and for timing experiments (wall-clock measurements must not contend
//! for cores).
//!
//! For (grid × replication × solver) experiments, prefer the
//! deterministic work-distributing [`crate::engine`]; this module remains
//! the light-weight path for single-loop sweeps.

use rayon::prelude::*;

/// How replications are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// Work-stealing parallelism over replications (default).
    #[default]
    Parallel,
    /// One after another on the calling thread (for timing studies).
    Sequential,
}

/// Runs `f` for the seeds `base_seed..base_seed + replications`, collecting
/// results in seed order (deterministic regardless of execution mode).
///
/// A failed replication aborts the sweep with its error instead of
/// panicking, so a caller sweeping many cells can report the failing cell
/// and carry on. Infallible closures use an error type such as
/// [`std::convert::Infallible`] (or any unconstructed one) and unwrap.
pub fn run_replications<T, E, F>(
    base_seed: u64,
    replications: usize,
    execution: Execution,
    f: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(u64) -> Result<T, E> + Sync,
{
    let seeds: Vec<u64> = (0..replications as u64).map(|i| base_seed + i).collect();
    match execution {
        Execution::Parallel => {
            let results: Vec<Result<T, E>> = seeds.par_iter().map(|&s| f(s)).collect();
            results.into_iter().collect()
        }
        Execution::Sequential => seeds.iter().map(|&s| f(s)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    #[test]
    fn results_are_in_seed_order() {
        let out = run_replications(10, 8, Execution::Parallel, |seed| {
            Ok::<_, Infallible>(seed * 2)
        })
        .unwrap();
        assert_eq!(out, vec![20, 22, 24, 26, 28, 30, 32, 34]);
        let seq = run_replications(10, 8, Execution::Sequential, |seed| {
            Ok::<_, Infallible>(seed * 2)
        })
        .unwrap();
        assert_eq!(out, seq);
    }

    #[test]
    fn zero_replications() {
        let out: Vec<u64> =
            run_replications(0, 0, Execution::Parallel, Ok::<_, Infallible>).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn first_error_aborts_the_sweep() {
        for execution in [Execution::Parallel, Execution::Sequential] {
            let r: Result<Vec<u64>, String> = run_replications(0, 6, execution, |seed| {
                if seed >= 3 {
                    Err(format!("seed {seed} failed"))
                } else {
                    Ok(seed)
                }
            });
            assert_eq!(r, Err("seed 3 failed".to_string()));
        }
    }
}
