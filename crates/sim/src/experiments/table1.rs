//! Table 1: execution time of the combinatorial `DSCT-EA-FR-OPT` vs a
//! general-purpose LP solver on the fractional relaxation DSCT-EA-FR, for
//! `n ∈ {100, …, 500}` tasks and `m = 5` machines.
//!
//! The paper compares a Python implementation against MOSEK; here the LP
//! path is this workspace's revised simplex. The reproduced claim is the
//! *shape*: the dedicated combinatorial algorithm beats the
//! general-purpose LP machinery at every size, with a widening margin.
//!
//! Runs on the [`crate::engine`] with `threads = 1` (wall-clock study)
//! and retained items, which pair the two solvers on the same generated
//! instance per replication for the agreement check.

use crate::engine::{CellSpec, ExperimentPlan};
use crate::report::{fmt_secs, TextTable};
use crate::stats::SummaryStats;
use dsct_core::solver::{FrOptSolver, LpSolver, Solver};
use dsct_lp::SolveOptions;
use dsct_workload::{InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

const FR_OPT: usize = 0;
const LP: usize = 1;

/// Configuration (defaults follow the paper; replications reduced from 10
/// to 3 because the simplex path dominates runtime — noted in
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Config {
    /// Task counts.
    pub task_counts: Vec<usize>,
    /// Machines.
    pub m: usize,
    /// Replications per point.
    pub replications: usize,
    /// Deadline tolerance.
    pub rho: f64,
    /// Energy-budget ratio.
    pub beta: f64,
    /// Optional wall-clock cap per LP solve (seconds; 0 = none).
    pub lp_time_limit_secs: f64,
    /// Also verify that both paths agree on the optimal value.
    pub check_agreement: bool,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            task_counts: vec![100, 200, 300, 400, 500],
            m: 5,
            replications: 3,
            rho: 0.35,
            beta: 0.5,
            lp_time_limit_secs: 120.0,
            check_agreement: false,
            base_seed: 777,
        }
    }
}

impl Table1Config {
    /// Reduced configuration for smoke tests / quick runs.
    pub fn quick() -> Self {
        Self {
            task_counts: vec![20, 40],
            m: 3,
            replications: 2,
            lp_time_limit_secs: 30.0,
            check_agreement: true,
            ..Self::default()
        }
    }
}

/// One row of the table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Task count.
    pub n: usize,
    /// Combinatorial solver runtime (s).
    pub fr_opt_time: SummaryStats,
    /// LP solver runtime (s).
    pub lp_time: SummaryStats,
    /// LP solves that did not reach optimality (time or iteration cap).
    pub lp_timeouts: usize,
    /// Worst relative disagreement between the two optimal values (only
    /// populated when agreement checking is on).
    pub max_rel_gap: f64,
}

/// Full table data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// Configuration used.
    pub config: Table1Config,
    /// One row per n.
    pub rows: Vec<Table1Row>,
}

/// Runs the comparison (sequentially: wall-clock study).
pub fn run(cfg: &Table1Config) -> Table1Result {
    let cells = cfg
        .task_counts
        .iter()
        .map(|&n| {
            CellSpec::new(
                format!("n={n}"),
                InstanceConfig {
                    tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.1, max: 1.0 }),
                    machines: MachineConfig::paper_random(cfg.m),
                    rho: cfg.rho,
                    beta: cfg.beta,
                },
            )
        })
        .collect();
    let lp_opts = SolveOptions {
        time_limit: if cfg.lp_time_limit_secs > 0.0 {
            Some(std::time::Duration::from_secs_f64(cfg.lp_time_limit_secs))
        } else {
            None
        },
        ..Default::default()
    };
    let solvers: Vec<Arc<dyn Solver>> = vec![
        Arc::new(FrOptSolver::new()),
        Arc::new(LpSolver::with_options(lp_opts)),
    ];
    let run = ExperimentPlan::new(cells, solvers)
        .replications(cfg.replications)
        .master_seed(cfg.base_seed)
        .threads(1) // wall-clock measurements must not contend for cores
        .keep_items(true)
        .run();

    let rows = cfg
        .task_counts
        .iter()
        .enumerate()
        .map(|(c, &n)| {
            // A non-optimal LP end state surfaces as a failed item, so the
            // timeout count of the old driver is the solver's failure
            // count here (the LP has no other failure mode on these
            // well-formed models).
            let lp_timeouts = run.solver_stats(c, LP).map(|s| s.failures).unwrap_or(0);
            // Pair FR and LP on the same replication (same seed ⇒ same
            // instance) for the worst-case agreement gap.
            let mut max_rel_gap = 0.0f64;
            if cfg.check_agreement {
                let items = run.items.as_deref().unwrap_or(&[]);
                let mut fr_acc = vec![None; cfg.replications];
                for item in items.iter().filter(|i| i.cell == c) {
                    match item.solver {
                        FR_OPT => fr_acc[item.rep] = item.measure.total_accuracy,
                        LP => {
                            if let (Some(fr), Some(lp)) =
                                (fr_acc[item.rep], item.measure.total_accuracy)
                            {
                                let gap = (lp - fr).abs() / item.measure.max_accuracy.max(1.0);
                                max_rel_gap = max_rel_gap.max(gap);
                            }
                        }
                        _ => {}
                    }
                }
            }
            Table1Row {
                n,
                fr_opt_time: run
                    .solver_timing_at(c, FR_OPT)
                    .map(|t| t.solve_time)
                    .unwrap_or_default(),
                lp_time: run
                    .solver_timing_at(c, LP)
                    .map(|t| t.solve_time)
                    .unwrap_or_default(),
                lp_timeouts,
                max_rel_gap,
            }
        })
        .collect();
    Table1Result {
        config: cfg.clone(),
        rows,
    }
}

/// Text rendering in the paper's layout (rows = methods, columns = n).
pub fn render(result: &Table1Result) -> String {
    let mut header = vec!["Number of tasks".to_string()];
    header.extend(result.rows.iter().map(|r| r.n.to_string()));
    let mut t = TextTable::new(header);
    let mut fr_row = vec!["DSCT-EA-FR-Opt (s)".to_string()];
    fr_row.extend(result.rows.iter().map(|r| fmt_secs(r.fr_opt_time.mean())));
    t.row(fr_row);
    let mut lp_row = vec!["DSCT-EA-FR [simplex] (s)".to_string()];
    lp_row.extend(result.rows.iter().map(|r| fmt_secs(r.lp_time.mean())));
    t.row(lp_row);
    t.render()
}

/// CSV-friendly table.
pub fn table(result: &Table1Result) -> TextTable {
    let mut t = TextTable::new([
        "n",
        "fr_opt_mean_s",
        "lp_mean_s",
        "lp_timeouts",
        "max_rel_gap",
    ]);
    for r in &result.rows {
        t.row([
            r.n.to_string(),
            format!("{:.6}", r.fr_opt_time.mean()),
            format!("{:.6}", r.lp_time.mean()),
            r.lp_timeouts.to_string(),
            format!("{:.2e}", r.max_rel_gap),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparison_agrees_and_reports() {
        let r = run(&Table1Config::quick());
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert_eq!(row.lp_timeouts, 0);
            assert_eq!(row.fr_opt_time.count() as usize, r.config.replications);
            assert_eq!(row.lp_time.count() as usize, r.config.replications);
            // Both paths compute the same optimum.
            assert!(
                row.max_rel_gap < 5e-4,
                "n {}: gap {}",
                row.n,
                row.max_rel_gap
            );
            assert!(row.fr_opt_time.mean() > 0.0);
        }
        let text = render(&r);
        assert!(text.contains("DSCT-EA-FR-Opt"));
    }
}
