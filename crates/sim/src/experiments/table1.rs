//! Table 1: execution time of the combinatorial `DSCT-EA-FR-OPT` vs a
//! general-purpose LP solver on the fractional relaxation DSCT-EA-FR, for
//! `n ∈ {100, …, 500}` tasks and `m = 5` machines.
//!
//! The paper compares a Python implementation against MOSEK; here the LP
//! path is this workspace's revised simplex. The reproduced claim is the
//! *shape*: the dedicated combinatorial algorithm beats the
//! general-purpose LP machinery at every size, with a widening margin.

use crate::report::{fmt_secs, TextTable};
use crate::runner::{run_replications, Execution};
use crate::stats::SummaryStats;
use dsct_core::fr_opt::{solve_fr_opt, FrOptOptions};
use dsct_core::lp_model::solve_fr_lp;
use dsct_lp::{SolveOptions, Status};
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration (defaults follow the paper; replications reduced from 10
/// to 3 because the simplex path dominates runtime — noted in
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Config {
    /// Task counts.
    pub task_counts: Vec<usize>,
    /// Machines.
    pub m: usize,
    /// Replications per point.
    pub replications: usize,
    /// Deadline tolerance.
    pub rho: f64,
    /// Energy-budget ratio.
    pub beta: f64,
    /// Optional wall-clock cap per LP solve (seconds; 0 = none).
    pub lp_time_limit_secs: f64,
    /// Also verify that both paths agree on the optimal value.
    pub check_agreement: bool,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            task_counts: vec![100, 200, 300, 400, 500],
            m: 5,
            replications: 3,
            rho: 0.35,
            beta: 0.5,
            lp_time_limit_secs: 120.0,
            check_agreement: false,
            base_seed: 777,
        }
    }
}

impl Table1Config {
    /// Reduced configuration for smoke tests / quick runs.
    pub fn quick() -> Self {
        Self {
            task_counts: vec![20, 40],
            m: 3,
            replications: 2,
            lp_time_limit_secs: 30.0,
            check_agreement: true,
            ..Self::default()
        }
    }
}

/// One row of the table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Task count.
    pub n: usize,
    /// Combinatorial solver runtime (s).
    pub fr_opt_time: SummaryStats,
    /// LP solver runtime (s).
    pub lp_time: SummaryStats,
    /// LP solves that hit the time limit.
    pub lp_timeouts: usize,
    /// Worst relative disagreement between the two optimal values (only
    /// populated when agreement checking is on).
    pub max_rel_gap: f64,
}

/// Full table data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// Configuration used.
    pub config: Table1Config,
    /// One row per n.
    pub rows: Vec<Table1Row>,
}

/// Runs the comparison.
pub fn run(cfg: &Table1Config) -> Table1Result {
    let rows = cfg
        .task_counts
        .iter()
        .map(|&n| {
            let icfg = InstanceConfig {
                tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.1, max: 1.0 }),
                machines: MachineConfig::paper_random(cfg.m),
                rho: cfg.rho,
                beta: cfg.beta,
            };
            let lp_opts = SolveOptions {
                time_limit: if cfg.lp_time_limit_secs > 0.0 {
                    Some(std::time::Duration::from_secs_f64(cfg.lp_time_limit_secs))
                } else {
                    None
                },
                ..Default::default()
            };
            // Wall-clock measurement: sequential.
            let samples = run_replications(
                cfg.base_seed.wrapping_add(n as u64),
                cfg.replications,
                Execution::Sequential,
                |seed| {
                    let inst = generate(&icfg, seed);
                    let t0 = Instant::now();
                    let fr = solve_fr_opt(&inst, &FrOptOptions::default());
                    let fr_time = t0.elapsed().as_secs_f64();
                    let t0 = Instant::now();
                    let lp = solve_fr_lp(&inst, &lp_opts).expect("model builds");
                    let lp_time = t0.elapsed().as_secs_f64();
                    let timed_out = lp.status != Status::Optimal;
                    let rel_gap = if cfg.check_agreement && !timed_out {
                        (lp.total_accuracy - fr.total_accuracy).abs()
                            / inst.total_max_accuracy().max(1.0)
                    } else {
                        0.0
                    };
                    (fr_time, lp_time, timed_out, rel_gap)
                },
            );
            let mut fr_stats = SummaryStats::new();
            let mut lp_stats = SummaryStats::new();
            let mut lp_timeouts = 0;
            let mut max_rel_gap = 0.0f64;
            for (f, l, to, g) in samples {
                fr_stats.push(f);
                lp_stats.push(l);
                if to {
                    lp_timeouts += 1;
                }
                max_rel_gap = max_rel_gap.max(g);
            }
            Table1Row {
                n,
                fr_opt_time: fr_stats,
                lp_time: lp_stats,
                lp_timeouts,
                max_rel_gap,
            }
        })
        .collect();
    Table1Result {
        config: cfg.clone(),
        rows,
    }
}

/// Text rendering in the paper's layout (rows = methods, columns = n).
pub fn render(result: &Table1Result) -> String {
    let mut header = vec!["Number of tasks".to_string()];
    header.extend(result.rows.iter().map(|r| r.n.to_string()));
    let mut t = TextTable::new(header);
    let mut fr_row = vec!["DSCT-EA-FR-Opt (s)".to_string()];
    fr_row.extend(result.rows.iter().map(|r| fmt_secs(r.fr_opt_time.mean())));
    t.row(fr_row);
    let mut lp_row = vec!["DSCT-EA-FR [simplex] (s)".to_string()];
    lp_row.extend(result.rows.iter().map(|r| fmt_secs(r.lp_time.mean())));
    t.row(lp_row);
    t.render()
}

/// CSV-friendly table.
pub fn table(result: &Table1Result) -> TextTable {
    let mut t = TextTable::new([
        "n",
        "fr_opt_mean_s",
        "lp_mean_s",
        "lp_timeouts",
        "max_rel_gap",
    ]);
    for r in &result.rows {
        t.row([
            r.n.to_string(),
            format!("{:.6}", r.fr_opt_time.mean()),
            format!("{:.6}", r.lp_time.mean()),
            r.lp_timeouts.to_string(),
            format!("{:.2e}", r.max_rel_gap),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparison_agrees_and_reports() {
        let r = run(&Table1Config::quick());
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert_eq!(row.lp_timeouts, 0);
            // Both paths compute the same optimum.
            assert!(
                row.max_rel_gap < 5e-4,
                "n {}: gap {}",
                row.n,
                row.max_rel_gap
            );
            assert!(row.fr_opt_time.mean() > 0.0);
        }
        let text = render(&r);
        assert!(text.contains("DSCT-EA-FR-Opt"));
    }
}
