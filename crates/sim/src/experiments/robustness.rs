//! Extension experiment (beyond the paper): runtime robustness of
//! DSCT-EA schedules under machine-speed jitter.
//!
//! Plans are made at nominal speeds; real machines co-locate workloads,
//! throttle, and boost. We execute the planned schedule in the
//! discrete-event engine with multiplicative speed jitter and compare the
//! realized accuracy of the two overrun policies: *compress* (exploit the
//! slimmable network and keep partial work) vs *drop* (classic
//! all-or-nothing inference). The gap between them quantifies the
//! robustness value of task compressibility — the same property the paper
//! exploits at planning time, paying off again at run time.

use crate::report::TextTable;
use crate::runner::{run_replications, Execution};
use crate::stats::SummaryStats;
use dsct_core::solver::ApproxSolver;
use dsct_exec::{execute, ExecutionConfig, OverrunPolicy};
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use serde::{Deserialize, Serialize};

/// Configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Tasks per instance.
    pub n: usize,
    /// Machines per instance.
    pub m: usize,
    /// Deadline tolerance.
    pub rho: f64,
    /// Energy-budget ratio.
    pub beta: f64,
    /// Jitter half-widths to sweep.
    pub jitters: Vec<f64>,
    /// Replications (instance × execution seeds) per point.
    pub replications: usize,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        Self {
            n: 60,
            m: 3,
            rho: 0.2,
            beta: 0.5,
            jitters: vec![0.0, 0.05, 0.1, 0.2, 0.3, 0.4],
            replications: 40,
            base_seed: 9090,
        }
    }
}

impl RobustnessConfig {
    /// Reduced configuration for smoke tests / quick runs.
    pub fn quick() -> Self {
        Self {
            n: 20,
            jitters: vec![0.0, 0.2, 0.4],
            replications: 6,
            ..Self::default()
        }
    }
}

/// One swept point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// Jitter half-width.
    pub jitter: f64,
    /// Planned mean accuracy (nominal speeds).
    pub planned: SummaryStats,
    /// Realized mean accuracy with the compress policy.
    pub compress: SummaryStats,
    /// Realized mean accuracy with the drop policy.
    pub drop: SummaryStats,
    /// Mean runtime compressions per instance (compress policy).
    pub compressions: SummaryStats,
    /// Mean runtime drops per instance (drop policy).
    pub drops: SummaryStats,
}

/// Full experiment data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessResult {
    /// Configuration used.
    pub config: RobustnessConfig,
    /// One point per jitter level.
    pub points: Vec<RobustnessPoint>,
}

/// Runs the sweep.
pub fn run(cfg: &RobustnessConfig, execution: Execution) -> RobustnessResult {
    let icfg = InstanceConfig {
        tasks: TaskConfig::paper(cfg.n, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
        machines: MachineConfig::paper_random(cfg.m),
        rho: cfg.rho,
        beta: cfg.beta,
    };
    let points = cfg
        .jitters
        .iter()
        .map(|&jitter| {
            let samples = run_replications(cfg.base_seed, cfg.replications, execution, |seed| {
                let inst = generate(&icfg, seed);
                let n = inst.num_tasks() as f64;
                let plan = ApproxSolver::new().solve_typed(&inst);
                let run = |overrun: OverrunPolicy| {
                    execute(
                        &inst,
                        &plan.schedule,
                        &ExecutionConfig {
                            speed_jitter: jitter,
                            seed: seed ^ 0xabcd_1234,
                            overrun,
                        },
                    )
                };
                let c = run(OverrunPolicy::Compress);
                let d = run(OverrunPolicy::Drop);
                Ok::<_, std::convert::Infallible>((
                    plan.total_accuracy / n,
                    c.realized_accuracy / n,
                    d.realized_accuracy / n,
                    c.compressions as f64,
                    d.drops as f64,
                ))
            })
            .expect("infallible");
            let mut point = RobustnessPoint {
                jitter,
                planned: SummaryStats::new(),
                compress: SummaryStats::new(),
                drop: SummaryStats::new(),
                compressions: SummaryStats::new(),
                drops: SummaryStats::new(),
            };
            for (p, c, d, nc, nd) in samples {
                point.planned.push(p);
                point.compress.push(c);
                point.drop.push(d);
                point.compressions.push(nc);
                point.drops.push(nd);
            }
            point
        })
        .collect();
    RobustnessResult {
        config: cfg.clone(),
        points,
    }
}

/// Text rendering.
pub fn table(result: &RobustnessResult) -> TextTable {
    let mut t = TextTable::new([
        "jitter",
        "planned",
        "compress",
        "drop",
        "compressions",
        "drops",
    ]);
    for p in &result.points {
        t.row([
            format!("{:.2}", p.jitter),
            format!("{:.4}", p.planned.mean()),
            format!("{:.4}", p.compress.mean()),
            format!("{:.4}", p.drop.mean()),
            format!("{:.1}", p.compressions.mean()),
            format!("{:.1}", p.drops.mean()),
        ]);
    }
    t
}

/// Human summary.
pub fn render(result: &RobustnessResult) -> String {
    let worst = result.points.last();
    let note = worst
        .map(|p| {
            format!(
                "At {:.0}% jitter, compressibility retains {:.1}% of the planned accuracy vs \
                 {:.1}% with drop-on-overrun.",
                p.jitter * 100.0,
                100.0 * p.compress.mean() / p.planned.mean().max(1e-12),
                100.0 * p.drop.mean() / p.planned.mean().max(1e-12),
            )
        })
        .unwrap_or_default();
    format!("{}\n{note}\n", table(result).render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_dominates_drop_and_degrades_gracefully() {
        let r = run(&RobustnessConfig::quick(), Execution::Parallel);
        assert_eq!(r.points.len(), 3);
        // Zero jitter: realized == planned for both policies.
        let zero = &r.points[0];
        assert!((zero.compress.mean() - zero.planned.mean()).abs() < 1e-9);
        assert!((zero.drop.mean() - zero.planned.mean()).abs() < 1e-9);
        for p in &r.points {
            assert!(
                p.compress.mean() >= p.drop.mean() - 1e-12,
                "jitter {}: compress {} < drop {}",
                p.jitter,
                p.compress.mean(),
                p.drop.mean()
            );
        }
        // High jitter hurts the drop policy more than compress.
        let hi = r.points.last().unwrap();
        let compress_loss = zero.planned.mean() - hi.compress.mean();
        let drop_loss = zero.planned.mean() - hi.drop.mean();
        assert!(
            drop_loss >= compress_loss,
            "drop loss {drop_loss} < compress loss {compress_loss}"
        );
    }
}
