//! Fig. 5: average accuracy under varying energy-budget ratio β for
//! `DSCT-EA-APPROX`, the upper bound `DSCT-EA-UB`, `EDF-NoCompression`,
//! and `EDF-3CompressionLevels` — plus the paper's headline energy-gain
//! number (≈ 70% of the budget saved for ≈ 2% accuracy loss).
//!
//! Paper parameters: `n = 100`, `m = 2`, `ρ = 1.0`, uniform tasks with
//! `θ = 0.1`, β from 0.1 to 1.0.
//!
//! Runs on the [`crate::engine`]: one cell per β, three solvers per cell.
//! The upper-bound series comes for free from the approximation's
//! certified fractional bound ([`dsct_core::solver::Solution::upper_bound`]),
//! so no second fractional solve is needed.

use crate::engine::{CellSpec, ExperimentPlan, ExperimentRun};
use crate::report::TextTable;
use crate::stats::SummaryStats;
use dsct_core::approx::{approx_from_fractional, Placement};
use dsct_core::solver::{ApproxSolver, EdfSolver, FrOptSolver, Solver};
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

const APPROX: usize = 0;
const EDF_FULL: usize = 1;
const EDF_LEVELS: usize = 2;

/// Configuration (defaults = the paper's).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Config {
    /// Tasks per instance.
    pub n: usize,
    /// Machines per instance.
    pub m: usize,
    /// Deadline tolerance.
    pub rho: f64,
    /// Fixed task efficiency θ.
    pub theta: f64,
    /// Budget ratios to sweep.
    pub betas: Vec<f64>,
    /// Replications per point.
    pub replications: usize,
    /// Accuracy loss tolerated for the energy-gain headline (paper: 2%).
    pub gain_tolerance: f64,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Self {
            n: 100,
            m: 2,
            rho: 1.0,
            theta: 0.1,
            betas: (1..=10).map(|i| i as f64 / 10.0).collect(),
            replications: 20,
            gain_tolerance: 0.02,
            base_seed: 5050,
        }
    }
}

impl Fig5Config {
    /// Reduced configuration for smoke tests / quick runs.
    pub fn quick() -> Self {
        Self {
            n: 25,
            betas: vec![0.1, 0.3, 0.5, 1.0],
            replications: 4,
            ..Self::default()
        }
    }

    fn instance_config(&self, beta: f64) -> InstanceConfig {
        InstanceConfig {
            tasks: TaskConfig::paper(self.n, ThetaDistribution::Fixed(self.theta)),
            machines: MachineConfig::paper_random(self.m),
            rho: self.rho,
            beta,
        }
    }
}

/// One swept point: mean per-task accuracies of every method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Budget ratio.
    pub beta: f64,
    /// `DSCT-EA-APPROX`.
    pub approx: SummaryStats,
    /// Fractional upper bound `DSCT-EA-UB`.
    pub upper_bound: SummaryStats,
    /// `EDF-NoCompression`.
    pub edf_full: SummaryStats,
    /// `EDF-3CompressionLevels`.
    pub edf_levels: SummaryStats,
}

/// Full figure data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Configuration used.
    pub config: Fig5Config,
    /// One point per β.
    pub points: Vec<Fig5Point>,
    /// Energy-gain headline: smallest swept β at which the approximation
    /// stays within `gain_tolerance` of the no-compression accuracy at
    /// β = 1 (None if the sweep never reaches the reference).
    pub energy_gain: Option<EnergyGain>,
}

/// The energy-gain headline numbers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyGain {
    /// Reference accuracy: EDF-NoCompression at the largest swept β.
    pub reference_accuracy: f64,
    /// Smallest β at which APPROX ≥ reference − tolerance.
    pub beta_star: f64,
    /// Fraction of the budget saved (`1 − beta_star / beta_max`).
    pub energy_saved: f64,
    /// Accuracy actually lost at `beta_star` relative to the reference.
    pub accuracy_loss: f64,
}

/// Runs the sweep on `threads` workers (0 = all cores, 1 = serial).
pub fn run(cfg: &Fig5Config, threads: usize) -> Fig5Result {
    let cells = cfg
        .betas
        .iter()
        .map(|&beta| CellSpec::new(format!("beta={beta:.2}"), cfg.instance_config(beta)))
        .collect();
    let solvers: Vec<Arc<dyn Solver>> = vec![
        Arc::new(ApproxSolver::new()),
        Arc::new(EdfSolver::no_compression()),
        Arc::new(EdfSolver::three_levels()),
    ];
    let run = ExperimentPlan::new(cells, solvers)
        .replications(cfg.replications)
        .master_seed(cfg.base_seed)
        .threads(threads)
        .keep_items(true) // the UB series is per-task-normalized from items
        .run();

    let points: Vec<Fig5Point> = cfg
        .betas
        .iter()
        .enumerate()
        .map(|(c, &beta)| point(&run, c, beta))
        .collect();
    let energy_gain = compute_energy_gain(cfg, &points);
    Fig5Result {
        config: cfg.clone(),
        points,
        energy_gain,
    }
}

fn point(run: &ExperimentRun, c: usize, beta: f64) -> Fig5Point {
    let per_task = |s: usize| -> SummaryStats {
        run.solver_stats(c, s)
            .map(|st| st.mean_accuracy)
            .unwrap_or_default()
    };
    // The engine aggregates the certified bound as a total; Fig. 5 plots
    // per-task accuracies, so rebuild UB / n from the retained items.
    let mut upper_bound = SummaryStats::new();
    for item in run.items.as_deref().unwrap_or(&[]) {
        if item.cell == c && item.solver == APPROX {
            if let Some(ub) = item.measure.upper_bound {
                upper_bound.push(ub / item.measure.num_tasks.max(1) as f64);
            }
        }
    }
    Fig5Point {
        beta,
        approx: per_task(APPROX),
        upper_bound,
        edf_full: per_task(EDF_FULL),
        edf_levels: per_task(EDF_LEVELS),
    }
}

fn compute_energy_gain(cfg: &Fig5Config, points: &[Fig5Point]) -> Option<EnergyGain> {
    let last = points.last()?;
    let reference = last.edf_full.mean();
    let beta_max = last.beta;
    let hit = points
        .iter()
        .find(|p| p.approx.mean() >= reference - cfg.gain_tolerance)?;
    Some(EnergyGain {
        reference_accuracy: reference,
        beta_star: hit.beta,
        energy_saved: 1.0 - hit.beta / beta_max,
        accuracy_loss: (reference - hit.approx.mean()).max(0.0),
    })
}

/// Internal ablation entry point: Fig. 5's APPROX series with first-fit
/// placement instead of least-loaded (used by the ablation bench).
pub fn approx_accuracy_with_placement(
    cfg: &Fig5Config,
    beta: f64,
    placement: Placement,
    seed: u64,
) -> f64 {
    let inst = generate(&cfg.instance_config(beta), seed);
    let fr = FrOptSolver::new().solve_typed(&inst);
    let sol = approx_from_fractional(&inst, fr, placement);
    sol.total_accuracy / inst.num_tasks() as f64
}

/// Text rendering.
pub fn table(result: &Fig5Result) -> TextTable {
    let mut t = TextTable::new(["beta", "approx", "ub", "edf_full", "edf_3levels"]);
    for p in &result.points {
        t.row([
            format!("{:.2}", p.beta),
            format!("{:.4}", p.approx.mean()),
            format!("{:.4}", p.upper_bound.mean()),
            format!("{:.4}", p.edf_full.mean()),
            format!("{:.4}", p.edf_levels.mean()),
        ]);
    }
    t
}

/// Human summary with the energy-gain headline.
pub fn render(result: &Fig5Result) -> String {
    let gain = match &result.energy_gain {
        Some(g) => format!(
            "Energy gain: β* = {:.2} ⇒ {:.0}% of the budget saved for {:.2}% mean-accuracy loss \
             (reference: EDF-NoCompression at β = {:.1}, accuracy {:.4}).",
            g.beta_star,
            g.energy_saved * 100.0,
            g.accuracy_loss * 100.0,
            result.points.last().map(|p| p.beta).unwrap_or(1.0),
            g.reference_accuracy
        ),
        None => "Energy gain: sweep never reached the no-compression reference.".to_string(),
    };
    format!("{}\n{}\n", table(result).render(), gain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_increases_with_budget_and_respects_ordering() {
        let r = run(&Fig5Config::quick(), 0);
        for w in r.points.windows(2) {
            assert!(
                w[1].approx.mean() >= w[0].approx.mean() - 0.02,
                "approx not (weakly) increasing in beta: {} then {}",
                w[0].approx.mean(),
                w[1].approx.mean()
            );
        }
        for p in &r.points {
            assert_eq!(p.approx.count() as usize, r.config.replications);
            assert_eq!(p.upper_bound.count() as usize, r.config.replications);
            // UB dominates APPROX; APPROX should beat the EDF baselines.
            assert!(
                p.upper_bound.mean() >= p.approx.mean() - 1e-9,
                "beta {}",
                p.beta
            );
            assert!(
                p.approx.mean() >= p.edf_full.mean() - 0.02,
                "beta {}: approx {} vs edf {}",
                p.beta,
                p.approx.mean(),
                p.edf_full.mean()
            );
        }
    }

    #[test]
    fn energy_gain_is_reported() {
        let r = run(&Fig5Config::quick(), 0);
        let g = r.energy_gain.expect("sweep reaches the reference");
        assert!(g.beta_star <= 1.0);
        assert!(g.energy_saved >= 0.0);
        assert!(g.accuracy_loss <= r.config.gain_tolerance + 1e-9);
    }

    #[test]
    fn thread_count_does_not_change_the_figure() {
        let serial = run(&Fig5Config::quick(), 1);
        let parallel = run(&Fig5Config::quick(), 4);
        let flat = |r: &Fig5Result| -> Vec<(f64, f64, f64, f64, f64)> {
            r.points
                .iter()
                .map(|p| {
                    (
                        p.beta,
                        p.approx.mean(),
                        p.upper_bound.mean(),
                        p.edf_full.mean(),
                        p.edf_levels.mean(),
                    )
                })
                .collect()
        };
        assert_eq!(flat(&serial), flat(&parallel));
    }
}
