//! One module per table/figure of the paper's evaluation.
//!
//! | Module | Reproduces |
//! |--------|------------|
//! | [`fig1`] | Fig. 1 — GPU energy efficiency vs speed |
//! | [`fig2`] | Fig. 2 — accuracy vs work, exponential + PWL fit |
//! | [`fig3`] | Fig. 3 — optimality gap vs task heterogeneity |
//! | [`fig4`] | Fig. 4a/4b — runtime scaling vs MIP solver |
//! | [`table1`] | Table 1 — FR-OPT vs LP solver runtimes |
//! | [`fig5`] | Fig. 5 — accuracy vs energy-budget ratio + energy gain |
//! | [`fig6`] | Fig. 6a/6b — energy profiles of two machines |
//! | [`robustness`] | extension: realized accuracy under runtime speed jitter |
//! | [`online`] | extension: online arrival service regret vs clairvoyant FR-OPT |
//! | [`chaos`] | extension: accuracy retention under deterministic fault injection |
//! | [`staged`] | extension: staged solver quality over DAG depth × operating points |

pub mod chaos;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod online;
pub mod robustness;
pub mod staged;
pub mod table1;
