//! Fig. 6: final energy profile of two heterogeneous machines under
//! varying energy-budget ratio β — workload balancing between a slow but
//! efficient machine (2 TFLOPS, 80 GFLOPS/W) and a fast, less efficient
//! one (5 TFLOPS, 70 GFLOPS/W), with very strict deadlines (ρ = 0.01).
//!
//! Two scenarios:
//! - **Uniform Tasks** (Fig. 6a): θ ~ U[0.1, 4.9] — the final profile
//!   stays close to the naive one;
//! - **Earliest High Efficient Tasks** (Fig. 6b): the earliest 30% of
//!   tasks have θ ∈ [4.0, 4.9], the rest θ ∈ [0.1, 1.0] — deadline-bound
//!   high-value tasks force the refinement to shift work onto machine 2,
//!   deviating visibly from the naive profile at small β.

use crate::report::TextTable;
use crate::runner::{run_replications, Execution};
use crate::stats::SummaryStats;
use dsct_core::solver::FrOptSolver;
use dsct_machines::catalog::fig6_two_machine_park;
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use serde::{Deserialize, Serialize};

/// Which Fig. 6 scenario to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig6Scenario {
    /// Fig. 6a: θ ~ U[0.1, 4.9].
    UniformTasks,
    /// Fig. 6b: earliest 30% with θ ∈ [4.0, 4.9], rest θ ∈ [0.1, 1.0].
    EarliestHighEfficient,
}

impl Fig6Scenario {
    fn theta(self) -> ThetaDistribution {
        match self {
            Fig6Scenario::UniformTasks => ThetaDistribution::Uniform { min: 0.1, max: 4.9 },
            Fig6Scenario::EarliestHighEfficient => ThetaDistribution::EarlySplit {
                fraction: 0.3,
                early: (4.0, 4.9),
                late: (0.1, 1.0),
            },
        }
    }
}

/// Configuration (defaults = the paper's).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Config {
    /// Scenario.
    pub scenario: Fig6Scenario,
    /// Tasks per instance.
    pub n: usize,
    /// Deadline tolerance (paper: 0.01 — very strict).
    pub rho: f64,
    /// Budget ratios to sweep.
    pub betas: Vec<f64>,
    /// Replications per point.
    pub replications: usize,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Fig6Config {
    /// Paper defaults for a scenario.
    pub fn paper(scenario: Fig6Scenario) -> Self {
        Self {
            scenario,
            n: 100,
            rho: 0.01,
            betas: (1..=10).map(|i| i as f64 / 10.0).collect(),
            replications: 10,
            base_seed: 6060,
        }
    }

    /// Reduced configuration for smoke tests / quick runs.
    pub fn quick(scenario: Fig6Scenario) -> Self {
        Self {
            n: 30,
            betas: vec![0.2, 0.4, 0.8],
            replications: 3,
            ..Self::paper(scenario)
        }
    }
}

/// One swept point: profiles normalized by `d^max`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Point {
    /// Budget ratio.
    pub beta: f64,
    /// Final (refined) profile of machine 1, as a fraction of `d^max`.
    pub p1: SummaryStats,
    /// Final profile of machine 2, as a fraction of `d^max`.
    pub p2: SummaryStats,
    /// Naive profile of machine 1 (fraction of `d^max`).
    pub naive_p1: SummaryStats,
    /// Naive profile of machine 2 (fraction of `d^max`).
    pub naive_p2: SummaryStats,
}

/// Full figure data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Configuration used.
    pub config: Fig6Config,
    /// One point per β.
    pub points: Vec<Fig6Point>,
    /// Mean absolute deviation between final and naive profiles across the
    /// sweep (the quantity that separates Fig. 6a from Fig. 6b).
    pub mean_profile_deviation: f64,
}

/// Runs the sweep.
pub fn run(cfg: &Fig6Config, execution: Execution) -> Fig6Result {
    let park = fig6_two_machine_park();
    let points: Vec<Fig6Point> = cfg
        .betas
        .iter()
        .map(|&beta| {
            let icfg = InstanceConfig {
                tasks: TaskConfig::paper(cfg.n, cfg.scenario.theta()),
                machines: MachineConfig::Explicit(park.machines().to_vec()),
                rho: cfg.rho,
                beta,
            };
            let salt = (beta * 1000.0) as u64;
            let samples = run_replications(
                cfg.base_seed.wrapping_add(salt),
                cfg.replications,
                execution,
                |seed| {
                    let inst = generate(&icfg, seed);
                    let d_max = inst.d_max();
                    let sol = FrOptSolver::new().solve_typed(&inst);
                    Ok::<_, std::convert::Infallible>((
                        sol.profile[0] / d_max,
                        sol.profile[1] / d_max,
                        sol.naive_profile.cap(0) / d_max,
                        sol.naive_profile.cap(1) / d_max,
                    ))
                },
            )
            .expect("infallible");
            let mut point = Fig6Point {
                beta,
                p1: SummaryStats::new(),
                p2: SummaryStats::new(),
                naive_p1: SummaryStats::new(),
                naive_p2: SummaryStats::new(),
            };
            for (p1, p2, n1, n2) in samples {
                point.p1.push(p1);
                point.p2.push(p2);
                point.naive_p1.push(n1);
                point.naive_p2.push(n2);
            }
            point
        })
        .collect();

    let mean_profile_deviation = points
        .iter()
        .map(|p| (p.p1.mean() - p.naive_p1.mean()).abs() + (p.p2.mean() - p.naive_p2.mean()).abs())
        .sum::<f64>()
        / points.len().max(1) as f64;

    Fig6Result {
        config: cfg.clone(),
        points,
        mean_profile_deviation,
    }
}

/// Text rendering.
pub fn table(result: &Fig6Result) -> TextTable {
    let mut t = TextTable::new([
        "beta",
        "p1/dmax",
        "p2/dmax",
        "naive_p1/dmax",
        "naive_p2/dmax",
    ]);
    for p in &result.points {
        t.row([
            format!("{:.2}", p.beta),
            format!("{:.3}", p.p1.mean()),
            format!("{:.3}", p.p2.mean()),
            format!("{:.3}", p.naive_p1.mean()),
            format!("{:.3}", p.naive_p2.mean()),
        ]);
    }
    t
}

/// Human summary.
pub fn render(result: &Fig6Result) -> String {
    let label = match result.config.scenario {
        Fig6Scenario::UniformTasks => "Uniform Tasks (Fig. 6a)",
        Fig6Scenario::EarliestHighEfficient => "Earliest High Efficient Tasks (Fig. 6b)",
    };
    format!(
        "{label}\n{}\nmean |final − naive| profile deviation: {:.4}\n",
        table(result).render(),
        result.mean_profile_deviation
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profiles_track_naive_more_closely_than_split() {
        let uni = run(
            &Fig6Config::quick(Fig6Scenario::UniformTasks),
            Execution::Parallel,
        );
        let split = run(
            &Fig6Config::quick(Fig6Scenario::EarliestHighEfficient),
            Execution::Parallel,
        );
        // The paper's qualitative claim: the split scenario deviates more
        // from the naive profile than the uniform one.
        assert!(
            split.mean_profile_deviation >= uni.mean_profile_deviation,
            "split {} vs uniform {}",
            split.mean_profile_deviation,
            uni.mean_profile_deviation
        );
    }

    #[test]
    fn profiles_are_normalized_and_bounded() {
        let r = run(
            &Fig6Config::quick(Fig6Scenario::UniformTasks),
            Execution::Parallel,
        );
        for p in &r.points {
            for v in [
                p.p1.mean(),
                p.p2.mean(),
                p.naive_p1.mean(),
                p.naive_p2.mean(),
            ] {
                assert!((0.0..=1.0 + 1e-9).contains(&v), "profile fraction {v}");
            }
        }
    }
}
