//! Fig. 1: energy efficiency vs speed across NVIDIA server GPUs, with the
//! linear trend the paper highlights ("devices exhibit linear improvement
//! in energy efficiency with the advancement of hardware speed").

use crate::report::TextTable;
use dsct_machines::catalog::{efficiency_speed_trend, GpuSpec, NVIDIA_SERVER_GPUS};
use serde::{Deserialize, Serialize};

/// One scatter point of the figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuPoint {
    /// GPU name.
    pub name: String,
    /// Launch year.
    pub year: u32,
    /// Speed in TFLOPS (x axis).
    pub tflops: f64,
    /// Efficiency in GFLOPS/W (y axis).
    pub efficiency: f64,
}

/// The figure's data: scatter points plus the fitted trend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Scatter points.
    pub points: Vec<GpuPoint>,
    /// Trend slope in (GFLOPS/W) per TFLOPS.
    pub trend_slope: f64,
    /// Trend intercept in GFLOPS/W.
    pub trend_intercept: f64,
    /// Coefficient of determination of the fit.
    pub r2: f64,
}

/// Builds the figure from the built-in catalog.
pub fn run() -> Fig1Result {
    run_with(&NVIDIA_SERVER_GPUS)
}

/// Builds the figure from an explicit spec list.
pub fn run_with(specs: &[GpuSpec]) -> Fig1Result {
    let (trend_slope, trend_intercept, r2) = efficiency_speed_trend(specs);
    let points = specs
        .iter()
        .map(|s| GpuPoint {
            name: s.name.to_string(),
            year: s.year,
            tflops: s.fp16_tflops,
            efficiency: s.efficiency(),
        })
        .collect();
    Fig1Result {
        points,
        trend_slope,
        trend_intercept,
        r2,
    }
}

/// Text rendering of the figure.
pub fn table(result: &Fig1Result) -> TextTable {
    let mut t = TextTable::new(["GPU", "year", "TFLOPS", "GFLOPS/W"]);
    let mut sorted: Vec<&GpuPoint> = result.points.iter().collect();
    sorted.sort_by(|a, b| a.tflops.total_cmp(&b.tflops));
    for p in sorted {
        t.row([
            p.name.clone(),
            p.year.to_string(),
            format!("{:.1}", p.tflops),
            format!("{:.1}", p.efficiency),
        ]);
    }
    t
}

/// Human summary line.
pub fn render(result: &Fig1Result) -> String {
    format!(
        "{}\nTrend: efficiency ≈ {:.3} · TFLOPS + {:.1} GFLOPS/W  (R² = {:.2})\n",
        table(result).render(),
        result.trend_slope,
        result.trend_intercept,
        result.r2
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_positive_trend() {
        let r = run();
        assert!(r.trend_slope > 0.0);
        assert!(r.points.len() >= 15);
        assert!(r.r2 > 0.5);
    }

    #[test]
    fn rendering_contains_every_gpu() {
        let r = run();
        let text = render(&r);
        for p in &r.points {
            assert!(text.contains(&p.name), "missing {}", p.name);
        }
    }
}
