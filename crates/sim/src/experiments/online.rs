//! Extension experiment (beyond the paper): accuracy regret of the
//! online arrival-driven service vs the clairvoyant offline bound.
//!
//! Deterministic Poisson arrival traces ([`dsct_workload::generate_arrivals`])
//! are replayed through `dsct-online` at several load factors λ. Each
//! trace is served twice — [`AdmissionPolicy::AdmitAll`] and
//! [`AdmissionPolicy::DegradeToFit`], both warm-started — and compared
//! against the FR-OPT optimum of the trace's clairvoyant instance (all
//! tasks known at `t = 0` with their absolute deadlines). Ignoring
//! release times only enlarges the feasible set, so with zero runtime
//! jitter the clairvoyant value upper-bounds any online schedule and the
//! reported regret `1 − online/bound` is non-negative.
//!
//! Determinism under any worker count follows the engine idiom
//! ([`crate::engine`]): per-item seeds come from
//! [`crate::engine::derive_seed`] on `(master, cell, rep)` alone, items
//! land in a slot array indexed by item id, and cells fold in item
//! order — the result is bit-identical for 1 or 64 workers.

use crate::engine::derive_seed;
use crate::report::TextTable;
use crate::stats::SummaryStats;
use dsct_core::solver::{FrOptSolver, SolverContext};
use dsct_online::{replay, AdmissionPolicy, OnlineConfig};
use dsct_workload::{
    generate_arrivals, ArrivalConfig, MachineConfig, TaskConfig, ThetaDistribution,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineExpConfig {
    /// Arrivals per trace.
    pub n: usize,
    /// Machines.
    pub m: usize,
    /// Load factors λ to sweep (offered work / aggregate park speed).
    pub loads: Vec<f64>,
    /// Relative-deadline slack (windows of mean full-model time).
    pub deadline_slack: f64,
    /// Energy-budget ratio β over the trace horizon.
    pub beta: f64,
    /// Traces per load factor.
    pub replications: usize,
    /// Master seed.
    pub base_seed: u64,
}

impl Default for OnlineExpConfig {
    fn default() -> Self {
        Self {
            n: 60,
            m: 3,
            loads: vec![0.3, 0.6, 1.0, 1.5, 2.5],
            deadline_slack: 2.0,
            beta: 0.5,
            replications: 24,
            base_seed: 4242,
        }
    }
}

impl OnlineExpConfig {
    /// Reduced configuration for smoke tests / quick runs.
    pub fn quick() -> Self {
        Self {
            n: 20,
            loads: vec![0.3, 1.0, 2.5],
            replications: 4,
            ..Self::default()
        }
    }

    fn arrival_config(&self, load: f64) -> ArrivalConfig {
        ArrivalConfig {
            tasks: TaskConfig::paper(self.n, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
            machines: MachineConfig::paper_random(self.m),
            load,
            deadline_slack: self.deadline_slack,
            beta: self.beta,
        }
    }
}

/// Per-trace measurements (one replication of one load cell).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Item {
    bound: f64,
    admit_all: f64,
    degrade: f64,
    regret_admit: f64,
    rejected: f64,
    expired: f64,
    solves: f64,
}

/// One swept load factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlinePoint {
    /// Load factor λ.
    pub load: f64,
    /// Clairvoyant FR-OPT total accuracy (the regret reference).
    pub bound: SummaryStats,
    /// Realized total accuracy under `AdmitAll` (warm-started replans).
    pub admit_all: SummaryStats,
    /// Realized total accuracy under `DegradeToFit`.
    pub degrade: SummaryStats,
    /// Relative regret `1 − admit_all/bound`.
    pub regret_admit: SummaryStats,
    /// Arrivals rejected by `DegradeToFit` per trace.
    pub rejected: SummaryStats,
    /// Admitted tasks expiring undispatched per trace (`AdmitAll`).
    pub expired: SummaryStats,
    /// Solver invocations per trace (`AdmitAll`, one per arrival batch).
    pub solves: SummaryStats,
}

/// Full experiment data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineResult {
    /// Configuration used.
    pub config: OnlineExpConfig,
    /// One point per load factor.
    pub points: Vec<OnlinePoint>,
}

fn measure(cfg: &OnlineExpConfig, load: f64, seed: u64, ctx: &mut SolverContext) -> Item {
    let trace = generate_arrivals(&cfg.arrival_config(load), seed).expect("validated config");
    let run = |policy: AdmissionPolicy| {
        let rcfg = dsct_online::ReplayConfig {
            online: OnlineConfig {
                policy,
                ..OnlineConfig::default()
            },
            ..Default::default()
        };
        replay(&trace, &rcfg).expect("zero jitter is a valid execution config")
    };
    let admit = run(AdmissionPolicy::AdmitAll);
    let degrade = run(AdmissionPolicy::DegradeToFit);
    let inst = trace.clairvoyant_instance();
    let bound = FrOptSolver::new()
        .solve_typed_with(&inst, ctx)
        .total_accuracy;
    Item {
        bound,
        admit_all: admit.summary.total_accuracy,
        degrade: degrade.summary.total_accuracy,
        regret_admit: 1.0 - admit.summary.total_accuracy / bound.max(1e-12),
        rejected: degrade.summary.rejected as f64,
        expired: admit.summary.expired as f64,
        solves: admit.summary.solves as f64,
    }
}

/// Runs the sweep on `threads` workers (`0` = all cores). The returned
/// data is bit-identical for any worker count.
pub fn run(cfg: &OnlineExpConfig, threads: usize) -> OnlineResult {
    let items: Vec<(usize, usize)> = (0..cfg.loads.len())
        .flat_map(|c| (0..cfg.replications).map(move |rep| (c, rep)))
        .collect();
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(items.len().max(1));

    let mut slots: Vec<Option<Item>> = vec![None; items.len()];
    if workers <= 1 {
        let mut ctx = SolverContext::new();
        ctx.set_parallelism_budget(1);
        for (idx, &(c, rep)) in items.iter().enumerate() {
            let seed = derive_seed(cfg.base_seed, c as u64, rep as u64);
            slots[idx] = Some(measure(cfg, cfg.loads[c], seed, &mut ctx));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Item)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let items = &items;
                scope.spawn(move || {
                    // One context per worker: a replay's internal solver
                    // parallelism stays at 1 so only item-level
                    // parallelism uses the machine.
                    let mut ctx = SolverContext::new();
                    ctx.set_parallelism_budget(1);
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= items.len() {
                            break;
                        }
                        let (c, rep) = items[idx];
                        let seed = derive_seed(cfg.base_seed, c as u64, rep as u64);
                        let item = measure(cfg, cfg.loads[c], seed, &mut ctx);
                        let _ = tx.send((idx, item));
                    }
                });
            }
            drop(tx);
            for (idx, item) in rx {
                slots[idx] = Some(item);
            }
        });
    }

    // Fold in item order: deterministic aggregates.
    let mut points: Vec<OnlinePoint> = cfg
        .loads
        .iter()
        .map(|&load| OnlinePoint {
            load,
            bound: SummaryStats::new(),
            admit_all: SummaryStats::new(),
            degrade: SummaryStats::new(),
            regret_admit: SummaryStats::new(),
            rejected: SummaryStats::new(),
            expired: SummaryStats::new(),
            solves: SummaryStats::new(),
        })
        .collect();
    for (idx, &(c, _)) in items.iter().enumerate() {
        let item = slots[idx].expect("every item executed");
        let p = &mut points[c];
        p.bound.push(item.bound);
        p.admit_all.push(item.admit_all);
        p.degrade.push(item.degrade);
        p.regret_admit.push(item.regret_admit);
        p.rejected.push(item.rejected);
        p.expired.push(item.expired);
        p.solves.push(item.solves);
    }
    OnlineResult {
        config: cfg.clone(),
        points,
    }
}

/// Text rendering.
pub fn table(result: &OnlineResult) -> TextTable {
    let mut t = TextTable::new([
        "load",
        "bound",
        "admit_all",
        "degrade",
        "regret%",
        "rejected",
        "expired",
        "solves",
    ]);
    for p in &result.points {
        t.row([
            format!("{:.2}", p.load),
            format!("{:.3}", p.bound.mean()),
            format!("{:.3}", p.admit_all.mean()),
            format!("{:.3}", p.degrade.mean()),
            format!("{:.2}", 100.0 * p.regret_admit.mean()),
            format!("{:.1}", p.rejected.mean()),
            format!("{:.1}", p.expired.mean()),
            format!("{:.1}", p.solves.mean()),
        ]);
    }
    t
}

/// Human summary.
pub fn render(result: &OnlineResult) -> String {
    let note = result
        .points
        .last()
        .map(|p| {
            format!(
                "At λ = {:.1}, the online service retains {:.1}% of the clairvoyant \
                 FR-OPT accuracy; DegradeToFit rejects {:.1} of {} arrivals.",
                p.load,
                100.0 * (1.0 - p.regret_admit.mean()),
                p.rejected.mean(),
                result.config.n,
            )
        })
        .unwrap_or_default();
    format!("{}\n{note}\n", table(result).render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regret_is_nonnegative_and_worker_count_is_invisible() {
        let cfg = OnlineExpConfig::quick();
        let a = run(&cfg, 1);
        let b = run(&cfg, 4);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "1-worker and 4-worker sweeps must be byte-identical"
        );
        for p in &a.points {
            assert!(
                p.regret_admit.min() >= -1e-9,
                "load {}: negative regret {}",
                p.load,
                p.regret_admit.min()
            );
            assert!(p.bound.mean() > 0.0);
        }
    }
}
