//! Fig. 2: accuracy vs number of floating-point operations for an
//! OFA-style slimmable network — the exponential accuracy curve and its
//! 5-segment piecewise-linear regression (the model every experiment's
//! tasks use).

use crate::report::TextTable;
use dsct_accuracy::fit::BreakpointSpacing;
use dsct_accuracy::ExponentialAccuracy;
use serde::{Deserialize, Serialize};

/// Configuration for the curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig2Config {
    /// Task efficiency θ (the paper's Fig. 2 shows the ofa-resnet curve;
    /// θ = 0.55 matches its saturation behaviour).
    pub theta: f64,
    /// Random-guess accuracy (1/1000 classes).
    pub a_min: f64,
    /// Full-model accuracy.
    pub a_max: f64,
    /// Piecewise-linear segments.
    pub segments: usize,
    /// Sample count along the work axis.
    pub samples: usize,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Self {
            theta: 0.55,
            a_min: 1.0 / 1000.0,
            a_max: 0.82,
            segments: 5,
            samples: 60,
        }
    }
}

/// One sample of the figure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Work in GFLOP.
    pub gflops: f64,
    /// Exponential model accuracy.
    pub exponential: f64,
    /// 5-segment PWL fit accuracy.
    pub pwl: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Configuration used.
    pub config: Fig2Config,
    /// Curve samples.
    pub points: Vec<CurvePoint>,
    /// Breakpoints of the fitted PWL (GFLOP, accuracy).
    pub breakpoints: Vec<(f64, f64)>,
    /// Maximum |exponential − pwl| over the samples.
    pub max_fit_error: f64,
}

/// Builds the figure.
pub fn run(cfg: &Fig2Config) -> Fig2Result {
    let exp = ExponentialAccuracy::paper_defaults_with(cfg.theta, cfg.a_min, cfg.a_max)
        .expect("valid config");
    let pwl = exp
        .to_pwl(cfg.segments, BreakpointSpacing::Geometric)
        .expect("valid fit");
    let mut points = Vec::with_capacity(cfg.samples + 1);
    let mut max_err = 0.0f64;
    for i in 0..=cfg.samples {
        let f = exp.f_max() * i as f64 / cfg.samples as f64;
        let e = exp.eval(f);
        let p = pwl.eval(f);
        max_err = max_err.max((e - p).abs());
        points.push(CurvePoint {
            gflops: f,
            exponential: e,
            pwl: p,
        });
    }
    let breakpoints = pwl
        .breakpoints()
        .iter()
        .zip(pwl.values())
        .map(|(&f, &a)| (f, a))
        .collect();
    Fig2Result {
        config: *cfg,
        points,
        breakpoints,
        max_fit_error: max_err,
    }
}

/// Text rendering: the sampled series.
pub fn table(result: &Fig2Result) -> TextTable {
    let mut t = TextTable::new(["GFLOP", "exponential", "pwl(5)"]);
    for p in &result.points {
        t.row([
            format!("{:.3}", p.gflops),
            format!("{:.4}", p.exponential),
            format!("{:.4}", p.pwl),
        ]);
    }
    t
}

/// Human summary.
pub fn render(result: &Fig2Result) -> String {
    format!(
        "{}\nbreakpoints: {:?}\nmax |exp − pwl| = {:.4}\n",
        table(result).render(),
        result
            .breakpoints
            .iter()
            .map(|&(f, a)| (format!("{f:.2}"), format!("{a:.3}")))
            .collect::<Vec<_>>(),
        result.max_fit_error
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_shape_matches_paper() {
        let r = run(&Fig2Config::default());
        // Concave increasing to a_max; the fit hugs the curve.
        let first = r.points.first().unwrap();
        let last = r.points.last().unwrap();
        assert!((first.exponential - 0.001).abs() < 1e-9);
        assert!((last.exponential - 0.82).abs() < 1e-9);
        assert!((last.pwl - 0.82).abs() < 1e-9);
        assert!(r.max_fit_error < 0.04, "fit error {}", r.max_fit_error);
        assert_eq!(r.breakpoints.len(), 6);
    }

    #[test]
    fn pwl_underestimates_concave_curve() {
        let r = run(&Fig2Config::default());
        for p in &r.points {
            assert!(p.pwl <= p.exponential + 1e-9);
        }
    }
}
