//! Fig. 4: execution time of `DSCT-EA-APPROX` vs the exact MIP solver
//! (`DSCT-EA-Opt`, 60 s time limit) when scaling (a) the number of tasks
//! with `m = 5` and (b) the number of machines with `n = 50`.
//!
//! The paper's finding: the MIP solver hits the time limit from `n = 30`
//! (resp. `m = 4`) while the approximation handles hundreds of tasks. Our
//! branch-and-bound substitute hits the wall even earlier (it is no MOSEK),
//! which only sharpens the contrast; the *shape* — exponential exact
//! solver vs polynomial approximation — is the reproduced claim.
//!
//! The paper does not state ρ/β/θ for this experiment; we use the Fig. 3
//! operating point (ρ = 0.35, β = 0.5, θ ~ U[0.1, 1.0]), noted in
//! EXPERIMENTS.md.

use crate::report::{fmt_secs, TextTable};
use crate::runner::{run_replications, Execution};
use crate::stats::SummaryStats;
use dsct_core::approx::{solve_approx, ApproxOptions};
use dsct_core::mip_model::solve_mip_exact;
use dsct_mip::{MipOptions, MipStatus};
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Configuration (defaults = the paper's sweep).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Config {
    /// Task counts for sweep (a), with `m = m_fixed`.
    pub task_counts: Vec<usize>,
    /// Machine counts for sweep (b), with `n = n_fixed`.
    pub machine_counts: Vec<usize>,
    /// Fixed machine count for sweep (a).
    pub m_fixed: usize,
    /// Fixed task count for sweep (b).
    pub n_fixed: usize,
    /// Wall-clock limit per MIP solve (paper: 60 s).
    pub time_limit_secs: f64,
    /// Replications per point (paper: 10; default 5 here because each
    /// capped MIP run costs the full 60 s once past the wall).
    pub replications: usize,
    /// Skip the MIP beyond this task count (it would only burn the full
    /// time limit; the paper's solver was already timing out at 30).
    pub mip_max_n: usize,
    /// Skip the MIP beyond this machine count.
    pub mip_max_m: usize,
    /// Deadline tolerance.
    pub rho: f64,
    /// Energy-budget ratio.
    pub beta: f64,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Self {
            task_counts: vec![10, 20, 30, 50, 100, 200, 300, 400, 500],
            machine_counts: vec![2, 3, 4, 5, 6, 7, 8, 9, 10],
            m_fixed: 5,
            n_fixed: 50,
            time_limit_secs: 60.0,
            replications: 5,
            mip_max_n: 30,
            mip_max_m: 5,
            rho: 0.35,
            beta: 0.5,
            base_seed: 4242,
        }
    }
}

impl Fig4Config {
    /// Reduced configuration for smoke tests / quick runs.
    pub fn quick() -> Self {
        Self {
            task_counts: vec![5, 10, 20],
            machine_counts: vec![2, 3],
            n_fixed: 8,
            time_limit_secs: 2.0,
            replications: 2,
            mip_max_n: 10,
            mip_max_m: 3,
            ..Self::default()
        }
    }
}

/// One swept point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Swept size (n for sweep a, m for sweep b).
    pub size: usize,
    /// Approximation runtime (s).
    pub approx_time: SummaryStats,
    /// MIP runtime (s); empty when the MIP was skipped at this size.
    pub mip_time: SummaryStats,
    /// How many MIP runs hit the time limit.
    pub mip_timeouts: usize,
    /// Whether the MIP was attempted at all.
    pub mip_attempted: bool,
}

/// Full figure data (both sweeps).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Configuration used.
    pub config: Fig4Config,
    /// Sweep (a): size = n.
    pub by_tasks: Vec<Fig4Point>,
    /// Sweep (b): size = m.
    pub by_machines: Vec<Fig4Point>,
}

fn point(cfg: &Fig4Config, n: usize, m: usize, size: usize, attempt_mip: bool) -> Fig4Point {
    let icfg = InstanceConfig {
        tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.1, max: 1.0 }),
        machines: MachineConfig::paper_random(m),
        rho: cfg.rho,
        beta: cfg.beta,
    };
    // Sequential execution: these are wall-clock measurements.
    let salt = (n * 1_000 + m) as u64;
    let samples = run_replications(
        cfg.base_seed.wrapping_add(salt),
        cfg.replications,
        Execution::Sequential,
        |seed| {
            let inst = generate(&icfg, seed);
            let t0 = Instant::now();
            let _ = solve_approx(&inst, &ApproxOptions::default());
            let approx_time = t0.elapsed().as_secs_f64();
            let (mip_time, timed_out) = if attempt_mip {
                let opts = MipOptions {
                    time_limit: Some(Duration::from_secs_f64(cfg.time_limit_secs)),
                    ..Default::default()
                };
                let t0 = Instant::now();
                let sol = solve_mip_exact(&inst, &opts).expect("model builds");
                (
                    Some(t0.elapsed().as_secs_f64()),
                    sol.status != MipStatus::Optimal,
                )
            } else {
                (None, false)
            };
            (approx_time, mip_time, timed_out)
        },
    );
    let mut approx_time = SummaryStats::new();
    let mut mip_time = SummaryStats::new();
    let mut mip_timeouts = 0;
    for (a, mt, to) in samples {
        approx_time.push(a);
        if let Some(t) = mt {
            mip_time.push(t);
        }
        if to {
            mip_timeouts += 1;
        }
    }
    Fig4Point {
        size,
        approx_time,
        mip_time,
        mip_timeouts,
        mip_attempted: attempt_mip,
    }
}

/// Runs both sweeps.
pub fn run(cfg: &Fig4Config) -> Fig4Result {
    let by_tasks = cfg
        .task_counts
        .iter()
        .map(|&n| point(cfg, n, cfg.m_fixed, n, n <= cfg.mip_max_n))
        .collect();
    let by_machines = cfg
        .machine_counts
        .iter()
        .map(|&m| point(cfg, cfg.n_fixed, m, m, m <= cfg.mip_max_m))
        .collect();
    Fig4Result {
        config: cfg.clone(),
        by_tasks,
        by_machines,
    }
}

fn sweep_table(label: &str, points: &[Fig4Point]) -> TextTable {
    let mut t = TextTable::new([label, "approx_mean", "mip_mean", "mip_timeouts"]);
    for p in points {
        t.row([
            p.size.to_string(),
            fmt_secs(p.approx_time.mean()),
            if p.mip_attempted {
                fmt_secs(p.mip_time.mean())
            } else {
                "skipped".to_string()
            },
            if p.mip_attempted {
                p.mip_timeouts.to_string()
            } else {
                "-".to_string()
            },
        ]);
    }
    t
}

/// Text rendering of both sweeps.
pub fn render(result: &Fig4Result) -> String {
    format!(
        "(a) runtime vs number of tasks (m = {}):\n{}\n(b) runtime vs number of machines (n = {}):\n{}",
        result.config.m_fixed,
        sweep_table("n", &result.by_tasks).render(),
        result.config.n_fixed,
        sweep_table("m", &result.by_machines).render(),
    )
}

/// CSV table (sweep a then sweep b, tagged).
pub fn table(result: &Fig4Result) -> TextTable {
    let mut t = TextTable::new([
        "sweep",
        "size",
        "approx_mean_s",
        "mip_mean_s",
        "mip_timeouts",
    ]);
    for (tag, points) in [
        ("tasks", &result.by_tasks),
        ("machines", &result.by_machines),
    ] {
        for p in points {
            t.row([
                tag.to_string(),
                p.size.to_string(),
                format!("{:.6}", p.approx_time.mean()),
                if p.mip_attempted {
                    format!("{:.6}", p.mip_time.mean())
                } else {
                    "".to_string()
                },
                p.mip_timeouts.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_approx_scaling() {
        let r = run(&Fig4Config::quick());
        assert_eq!(r.by_tasks.len(), 3);
        assert_eq!(r.by_machines.len(), 2);
        // The approximation always finishes fast.
        for p in r.by_tasks.iter().chain(&r.by_machines) {
            assert!(p.approx_time.mean() < 5.0);
        }
        // MIP attempted only within the caps.
        assert!(r.by_tasks[0].mip_attempted);
        assert!(!r.by_tasks[2].mip_attempted);
    }
}
