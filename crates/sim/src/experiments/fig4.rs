//! Fig. 4: execution time of `DSCT-EA-APPROX` vs the exact MIP solver
//! (`DSCT-EA-Opt`, 60 s time limit) when scaling (a) the number of tasks
//! with `m = 5` and (b) the number of machines with `n = 50`.
//!
//! The paper's finding: the MIP solver hits the time limit from `n = 30`
//! (resp. `m = 4`) while the approximation handles hundreds of tasks. Our
//! branch-and-bound substitute hits the wall even earlier (it is no MOSEK),
//! which only sharpens the contrast; the *shape* — exponential exact
//! solver vs polynomial approximation — is the reproduced claim.
//!
//! The paper does not state ρ/β/θ for this experiment; we use the Fig. 3
//! operating point (ρ = 0.35, β = 0.5, θ ~ U[0.1, 1.0]), noted in
//! EXPERIMENTS.md.
//!
//! Runs on the [`crate::engine`] with `threads = 1`: these are wall-clock
//! measurements, so items must not contend for cores. Cells past the MIP
//! size caps restrict their solver set to the approximation alone via
//! [`CellSpec::with_solvers`].

use crate::engine::{CellSpec, ExperimentPlan};
use crate::report::{fmt_secs, TextTable};
use crate::stats::SummaryStats;
use dsct_core::solver::{ApproxSolver, MipSolver, Solver};
use dsct_mip::MipOptions;
use dsct_workload::{InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

const APPROX: usize = 0;
const MIP: usize = 1;

/// Configuration (defaults = the paper's sweep).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Config {
    /// Task counts for sweep (a), with `m = m_fixed`.
    pub task_counts: Vec<usize>,
    /// Machine counts for sweep (b), with `n = n_fixed`.
    pub machine_counts: Vec<usize>,
    /// Fixed machine count for sweep (a).
    pub m_fixed: usize,
    /// Fixed task count for sweep (b).
    pub n_fixed: usize,
    /// Wall-clock limit per MIP solve (paper: 60 s).
    pub time_limit_secs: f64,
    /// Replications per point (paper: 10; default 5 here because each
    /// capped MIP run costs the full 60 s once past the wall).
    pub replications: usize,
    /// Skip the MIP beyond this task count (it would only burn the full
    /// time limit; the paper's solver was already timing out at 30).
    pub mip_max_n: usize,
    /// Skip the MIP beyond this machine count.
    pub mip_max_m: usize,
    /// Deadline tolerance.
    pub rho: f64,
    /// Energy-budget ratio.
    pub beta: f64,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Self {
            task_counts: vec![10, 20, 30, 50, 100, 200, 300, 400, 500],
            machine_counts: vec![2, 3, 4, 5, 6, 7, 8, 9, 10],
            m_fixed: 5,
            n_fixed: 50,
            time_limit_secs: 60.0,
            replications: 5,
            mip_max_n: 30,
            mip_max_m: 5,
            rho: 0.35,
            beta: 0.5,
            base_seed: 4242,
        }
    }
}

impl Fig4Config {
    /// Reduced configuration for smoke tests / quick runs.
    pub fn quick() -> Self {
        Self {
            task_counts: vec![5, 10, 20],
            machine_counts: vec![2, 3],
            n_fixed: 8,
            time_limit_secs: 2.0,
            replications: 2,
            mip_max_n: 10,
            mip_max_m: 3,
            ..Self::default()
        }
    }

    fn cell(&self, n: usize, m: usize, label: String, attempt_mip: bool) -> CellSpec {
        let config = InstanceConfig {
            tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.1, max: 1.0 }),
            machines: MachineConfig::paper_random(m),
            rho: self.rho,
            beta: self.beta,
        };
        if attempt_mip {
            CellSpec::new(label, config)
        } else {
            CellSpec::with_solvers(label, config, vec![APPROX])
        }
    }
}

/// One swept point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Swept size (n for sweep a, m for sweep b).
    pub size: usize,
    /// Approximation runtime (s).
    pub approx_time: SummaryStats,
    /// MIP runtime (s); empty when the MIP was skipped at this size.
    pub mip_time: SummaryStats,
    /// How many MIP runs stopped on the wall-clock limit.
    pub mip_timeouts: usize,
    /// Whether the MIP was attempted at all.
    pub mip_attempted: bool,
}

/// Full figure data (both sweeps).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Configuration used.
    pub config: Fig4Config,
    /// Sweep (a): size = n.
    pub by_tasks: Vec<Fig4Point>,
    /// Sweep (b): size = m.
    pub by_machines: Vec<Fig4Point>,
}

/// Runs both sweeps as one engine plan (sequentially: wall-clock study).
pub fn run(cfg: &Fig4Config) -> Fig4Result {
    let mut cells = Vec::new();
    let mut sizes = Vec::new();
    for &n in &cfg.task_counts {
        cells.push(cfg.cell(n, cfg.m_fixed, format!("n={n}"), n <= cfg.mip_max_n));
        sizes.push(n);
    }
    let split = cells.len();
    for &m in &cfg.machine_counts {
        cells.push(cfg.cell(cfg.n_fixed, m, format!("m={m}"), m <= cfg.mip_max_m));
        sizes.push(m);
    }

    let solvers: Vec<Arc<dyn Solver>> = vec![
        Arc::new(ApproxSolver::new()),
        Arc::new(MipSolver::with_options(MipOptions {
            time_limit: Some(Duration::from_secs_f64(cfg.time_limit_secs)),
            ..Default::default()
        })),
    ];
    let run = ExperimentPlan::new(cells, solvers)
        .replications(cfg.replications)
        .master_seed(cfg.base_seed)
        .threads(1) // wall-clock measurements must not contend for cores
        .run();

    let point = |c: usize| -> Fig4Point {
        let approx_time = run
            .solver_timing_at(c, APPROX)
            .map(|t| t.solve_time)
            .unwrap_or_default();
        let mip = run.solver_timing_at(c, MIP);
        Fig4Point {
            size: sizes[c],
            approx_time,
            mip_time: mip.map(|t| t.solve_time).unwrap_or_default(),
            mip_timeouts: mip.map(|t| t.timeouts).unwrap_or(0),
            mip_attempted: mip.is_some(),
        }
    };
    Fig4Result {
        config: cfg.clone(),
        by_tasks: (0..split).map(point).collect(),
        by_machines: (split..sizes.len()).map(point).collect(),
    }
}

fn sweep_table(label: &str, points: &[Fig4Point]) -> TextTable {
    let mut t = TextTable::new([label, "approx_mean", "mip_mean", "mip_timeouts"]);
    for p in points {
        t.row([
            p.size.to_string(),
            fmt_secs(p.approx_time.mean()),
            if p.mip_attempted {
                fmt_secs(p.mip_time.mean())
            } else {
                "skipped".to_string()
            },
            if p.mip_attempted {
                p.mip_timeouts.to_string()
            } else {
                "-".to_string()
            },
        ]);
    }
    t
}

/// Text rendering of both sweeps.
pub fn render(result: &Fig4Result) -> String {
    format!(
        "(a) runtime vs number of tasks (m = {}):\n{}\n(b) runtime vs number of machines (n = {}):\n{}",
        result.config.m_fixed,
        sweep_table("n", &result.by_tasks).render(),
        result.config.n_fixed,
        sweep_table("m", &result.by_machines).render(),
    )
}

/// CSV table (sweep a then sweep b, tagged).
pub fn table(result: &Fig4Result) -> TextTable {
    let mut t = TextTable::new([
        "sweep",
        "size",
        "approx_mean_s",
        "mip_mean_s",
        "mip_timeouts",
    ]);
    for (tag, points) in [
        ("tasks", &result.by_tasks),
        ("machines", &result.by_machines),
    ] {
        for p in points {
            t.row([
                tag.to_string(),
                p.size.to_string(),
                format!("{:.6}", p.approx_time.mean()),
                if p.mip_attempted {
                    format!("{:.6}", p.mip_time.mean())
                } else {
                    "".to_string()
                },
                p.mip_timeouts.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_approx_scaling() {
        let r = run(&Fig4Config::quick());
        assert_eq!(r.by_tasks.len(), 3);
        assert_eq!(r.by_machines.len(), 2);
        // The approximation always finishes fast.
        for p in r.by_tasks.iter().chain(&r.by_machines) {
            assert_eq!(p.approx_time.count() as usize, 2);
            assert!(p.approx_time.mean() < 5.0);
        }
        // MIP attempted only within the caps.
        assert!(r.by_tasks[0].mip_attempted);
        assert!(!r.by_tasks[2].mip_attempted);
        assert_eq!(r.by_tasks[2].mip_time.count(), 0);
    }
}
