//! Extension — staged solver quality over DAG depth × operating-point
//! count (DESIGN §17).
//!
//! Sweeps chain-DAG depth and DVFS catalog size on the paper's workload
//! recipe and reports the staged approximation's per-task accuracy, its
//! gap to the lowered fractional upper bound, and the spent energy
//! fraction. Depth 1 with a single operating point is the flat model,
//! so the first cell doubles as a regression pin on the flat pipeline;
//! the added catalog points are all dominated, so the gap must be flat
//! across the operating-point axis.

use crate::report::TextTable;
use crate::runner::{run_replications, Execution};
use crate::stats::SummaryStats;
use dsct_core::staged::StagedApproxSolver;
use dsct_workload::{
    generate_staged, DagShape, InstanceConfig, MachineConfig, StagedConfig, TaskConfig,
    ThetaDistribution,
};
use serde::{Deserialize, Serialize};

/// Configuration of the staged sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StagedExpConfig {
    /// Tasks per instance.
    pub n: usize,
    /// Machines per instance.
    pub m: usize,
    /// Deadline tolerance ρ.
    pub rho: f64,
    /// Energy-budget ratio β.
    pub beta: f64,
    /// Chain depths to sweep (stages per task).
    pub depths: Vec<usize>,
    /// Operating points per machine to sweep (1 = fixed frequency).
    pub points: Vec<usize>,
    /// Replications per (depth, points) cell.
    pub replications: usize,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for StagedExpConfig {
    fn default() -> Self {
        Self {
            n: 60,
            m: 4,
            rho: 0.35,
            beta: 0.5,
            depths: vec![1, 2, 4],
            points: vec![1, 2, 4],
            replications: 24,
            base_seed: 42,
        }
    }
}

impl StagedExpConfig {
    /// Reduced configuration for smoke tests / quick runs.
    pub fn quick() -> Self {
        Self {
            n: 16,
            m: 2,
            depths: vec![1, 2],
            points: vec![1, 3],
            replications: 4,
            ..Self::default()
        }
    }
}

/// One (depth, operating-point count) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StagedPoint {
    /// Chain depth (stages per task).
    pub depth: usize,
    /// Operating points per machine.
    pub points: usize,
    /// Per-task accuracy of the staged approximation: mean/std/min/max.
    pub accuracy: SummaryStats,
    /// Per-task gap to the lowered fractional upper bound.
    pub gap: SummaryStats,
    /// Spent energy as a fraction of the budget.
    pub energy_fraction: SummaryStats,
}

/// Full sweep data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StagedExpResult {
    /// Configuration used.
    pub config: StagedExpConfig,
    /// One entry per (depth, points) cell, depth-major.
    pub cells: Vec<StagedPoint>,
}

/// Runs the sweep.
pub fn run(cfg: &StagedExpConfig, execution: Execution) -> StagedExpResult {
    let mut cells = Vec::with_capacity(cfg.depths.len() * cfg.points.len());
    for &depth in &cfg.depths {
        for &points in &cfg.points {
            let scfg = StagedConfig {
                base: InstanceConfig {
                    tasks: TaskConfig::paper(
                        cfg.n,
                        ThetaDistribution::Uniform { min: 0.1, max: 2.0 },
                    ),
                    machines: MachineConfig::paper_random(cfg.m),
                    rho: cfg.rho,
                    beta: cfg.beta,
                },
                shape: DagShape::Chain,
                depth,
                extra_points: points.saturating_sub(1),
            };
            // Salt seeds per depth only: cells along the points axis
            // share draws, so the dominated-point invariance is a paired
            // (bit-exact) comparison rather than a statistical one.
            let salt = (depth as u64) << 32;
            let samples = run_replications(
                cfg.base_seed.wrapping_add(salt),
                cfg.replications,
                execution,
                |seed| {
                    let inst = generate_staged(&scfg, seed).expect("valid staged config");
                    let sol = StagedApproxSolver::checked()
                        .solve(&inst)
                        .expect("staged solve succeeds on generated instances");
                    let n = inst.num_tasks() as f64;
                    let acc = sol.total_accuracy / n;
                    let ub = sol.upper_bound.expect("approx certifies a bound") / n;
                    let frac = if inst.budget() > 0.0 {
                        sol.energy / inst.budget()
                    } else {
                        0.0
                    };
                    Ok::<_, std::convert::Infallible>((acc, (ub - acc).max(0.0), frac))
                },
            )
            .expect("infallible");
            let mut accuracy = SummaryStats::new();
            let mut gap = SummaryStats::new();
            let mut energy_fraction = SummaryStats::new();
            for (a, g, f) in samples {
                accuracy.push(a);
                gap.push(g);
                energy_fraction.push(f);
            }
            cells.push(StagedPoint {
                depth,
                points,
                accuracy,
                gap,
                energy_fraction,
            });
        }
    }
    StagedExpResult {
        config: cfg.clone(),
        cells,
    }
}

/// Text rendering.
pub fn table(result: &StagedExpResult) -> TextTable {
    let mut t = TextTable::new([
        "depth",
        "points",
        "acc_mean",
        "acc_min",
        "gap_mean",
        "gap_max",
        "energy_frac",
    ]);
    for c in &result.cells {
        t.row([
            format!("{}", c.depth),
            format!("{}", c.points),
            format!("{:.4}", c.accuracy.mean()),
            format!("{:.4}", c.accuracy.min()),
            format!("{:.5}", c.gap.mean()),
            format!("{:.5}", c.gap.max()),
            format!("{:.3}", c.energy_fraction.mean()),
        ]);
    }
    t
}

/// Human summary.
pub fn render(result: &StagedExpResult) -> String {
    let worst_gap = result
        .cells
        .iter()
        .map(|c| c.gap.max())
        .fold(0.0f64, f64::max);
    format!(
        "{}\nWorst per-task gap to the lowered fractional bound: {:.5}.\n\
         Dominated operating points leave every column unchanged; deeper \
         chains pay only the min-rule composition, not a solver penalty.\n",
        table(result).render(),
        worst_gap
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_respects_the_bound_and_budget() {
        let r = run(&StagedExpConfig::quick(), Execution::Parallel);
        assert_eq!(r.cells.len(), 4);
        for c in &r.cells {
            assert!(c.accuracy.mean() > 0.0, "cell {}x{}", c.depth, c.points);
            assert!(c.gap.min() >= 0.0);
            assert!(
                c.energy_fraction.max() <= 1.0 + 1e-9,
                "cell {}x{}: energy fraction {}",
                c.depth,
                c.points,
                c.energy_fraction.max()
            );
        }
    }

    #[test]
    fn dominated_operating_points_do_not_change_any_cell() {
        // Same depth, different catalog sizes: the extra points are all
        // dominated, so the sampled metrics must be bit-identical.
        let cfg = StagedExpConfig {
            n: 10,
            m: 2,
            depths: vec![2],
            points: vec![1, 4],
            replications: 3,
            ..StagedExpConfig::default()
        };
        let r = run(&cfg, Execution::Sequential);
        assert_eq!(r.cells.len(), 2);
        assert_eq!(
            r.cells[0].accuracy.mean().to_bits(),
            r.cells[1].accuracy.mean().to_bits()
        );
        assert_eq!(
            r.cells[0].gap.max().to_bits(),
            r.cells[1].gap.max().to_bits()
        );
    }

    #[test]
    fn deterministic_across_execution_modes() {
        let cfg = StagedExpConfig {
            n: 8,
            m: 2,
            depths: vec![2],
            points: vec![2],
            replications: 3,
            ..StagedExpConfig::default()
        };
        let a = run(&cfg, Execution::Parallel);
        let b = run(&cfg, Execution::Sequential);
        assert_eq!(
            a.cells[0].accuracy.mean().to_bits(),
            b.cells[0].accuracy.mean().to_bits()
        );
    }
}
