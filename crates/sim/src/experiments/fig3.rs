//! Fig. 3: optimality gap of `DSCT-EA-APPROX` (distance to the fractional
//! upper bound `DSCT-EA-UB`) as the task-heterogeneity ratio
//! `μ = θ_max/θ_min` grows — mean/min/max over many replications, compared
//! against the pessimistic worst-case guarantee `G`.
//!
//! Paper parameters: `n = 100`, `m = 5`, `ρ = 0.35`, `β = 0.5`,
//! `μ ∈ [5, 20]`, 100 experiments per point.

use crate::report::TextTable;
use crate::runner::{run_replications, Execution};
use crate::stats::SummaryStats;
use dsct_core::guarantee::absolute_guarantee;
use dsct_core::solver::ApproxSolver;
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use serde::{Deserialize, Serialize};

/// Configuration (defaults = the paper's).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Config {
    /// Tasks per instance.
    pub n: usize,
    /// Machines per instance.
    pub m: usize,
    /// Deadline tolerance.
    pub rho: f64,
    /// Energy-budget ratio.
    pub beta: f64,
    /// Heterogeneity ratios to sweep.
    pub mus: Vec<f64>,
    /// Replications per point.
    pub replications: usize,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Self {
            n: 100,
            m: 5,
            rho: 0.35,
            beta: 0.5,
            mus: vec![5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0],
            replications: 100,
            base_seed: 42,
        }
    }
}

impl Fig3Config {
    /// Reduced configuration for smoke tests / quick runs.
    pub fn quick() -> Self {
        Self {
            n: 30,
            m: 3,
            mus: vec![5.0, 12.5, 20.0],
            replications: 8,
            ..Self::default()
        }
    }
}

/// One swept point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Heterogeneity ratio μ.
    pub mu: f64,
    /// Per-task optimality gap `(UB − SOL)/n`: mean/std/min/max.
    pub gap: SummaryStats,
    /// Mean per-task accuracy of the approximation.
    pub approx_mean_accuracy: f64,
    /// Mean per-task accuracy of the upper bound.
    pub ub_mean_accuracy: f64,
    /// Mean worst-case guarantee `G/n` (the pessimistic bound of Eq. 13).
    pub guarantee_per_task: f64,
}

/// Full figure data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Configuration used.
    pub config: Fig3Config,
    /// One entry per μ.
    pub points: Vec<Fig3Point>,
}

/// Runs the sweep.
pub fn run(cfg: &Fig3Config, execution: Execution) -> Fig3Result {
    let points = cfg
        .mus
        .iter()
        .map(|&mu| {
            let icfg = InstanceConfig {
                tasks: TaskConfig::paper(cfg.n, ThetaDistribution::heterogeneity(mu)),
                machines: MachineConfig::paper_random(cfg.m),
                rho: cfg.rho,
                beta: cfg.beta,
            };
            // Seeds are salted per μ so points are independent.
            let salt = (mu * 1000.0) as u64;
            let samples = run_replications(
                cfg.base_seed.wrapping_add(salt),
                cfg.replications,
                execution,
                |seed| {
                    let inst = generate(&icfg, seed);
                    let sol = ApproxSolver::new().solve_typed(&inst);
                    let n = inst.num_tasks() as f64;
                    let ub = sol.fractional.total_accuracy / n;
                    let got = sol.total_accuracy / n;
                    Ok::<_, std::convert::Infallible>((
                        ub - got,
                        got,
                        ub,
                        absolute_guarantee(&inst) / n,
                    ))
                },
            )
            .expect("infallible");
            let mut gap = SummaryStats::new();
            let mut approx = SummaryStats::new();
            let mut ub = SummaryStats::new();
            let mut guar = SummaryStats::new();
            for (g, a, u, w) in samples {
                gap.push(g.max(0.0));
                approx.push(a);
                ub.push(u);
                guar.push(w);
            }
            Fig3Point {
                mu,
                gap,
                approx_mean_accuracy: approx.mean(),
                ub_mean_accuracy: ub.mean(),
                guarantee_per_task: guar.mean(),
            }
        })
        .collect();
    Fig3Result {
        config: cfg.clone(),
        points,
    }
}

/// Text rendering.
pub fn table(result: &Fig3Result) -> TextTable {
    let mut t = TextTable::new([
        "mu",
        "gap_mean",
        "gap_min",
        "gap_max",
        "approx_acc",
        "ub_acc",
        "G/n",
    ]);
    for p in &result.points {
        t.row([
            format!("{:.1}", p.mu),
            format!("{:.5}", p.gap.mean()),
            format!("{:.5}", p.gap.min()),
            format!("{:.5}", p.gap.max()),
            format!("{:.4}", p.approx_mean_accuracy),
            format!("{:.4}", p.ub_mean_accuracy),
            format!("{:.3}", p.guarantee_per_task),
        ]);
    }
    t
}

/// Human summary.
pub fn render(result: &Fig3Result) -> String {
    let worst = result
        .points
        .iter()
        .map(|p| p.gap.max())
        .fold(0.0f64, f64::max);
    format!(
        "{}\nWorst observed per-task gap {:.5} — far below the pessimistic bound (G/n ≈ {:.2}).\n",
        table(result).render(),
        worst,
        result
            .points
            .iter()
            .map(|p| p.guarantee_per_task)
            .fold(0.0f64, f64::max)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_gap_is_small_and_below_guarantee() {
        let r = run(&Fig3Config::quick(), Execution::Parallel);
        assert_eq!(r.points.len(), 3);
        for p in &r.points {
            assert!(p.gap.mean() >= 0.0);
            // The headline of Fig. 3: the observed gap is far below G/n.
            assert!(
                p.gap.max() < p.guarantee_per_task,
                "mu {}: gap {} vs G/n {}",
                p.mu,
                p.gap.max(),
                p.guarantee_per_task
            );
            // And small in absolute terms.
            assert!(
                p.gap.mean() < 0.15,
                "mu {}: mean gap {}",
                p.mu,
                p.gap.mean()
            );
            assert!(p.ub_mean_accuracy >= p.approx_mean_accuracy - 1e-9);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = Fig3Config {
            replications: 3,
            mus: vec![10.0],
            n: 12,
            m: 2,
            ..Fig3Config::default()
        };
        let a = run(&cfg, Execution::Parallel);
        let b = run(&cfg, Execution::Sequential);
        assert!((a.points[0].gap.mean() - b.points[0].gap.mean()).abs() < 1e-15);
    }
}
