//! Extension experiment (beyond the paper): accuracy retention of the
//! online service under deterministic fault injection.
//!
//! Each replication generates a Poisson arrival trace
//! ([`dsct_workload::generate_arrivals`]) and replays it once clean and
//! once per chaos *scenario* — a [`ChaosConfig`] enabling one fault
//! kind at a time (machine failure, speed degradation, budget shock,
//! arrival burst) plus the combined default. Reported per scenario is
//! the **retention**: realized accuracy of the base tasks under chaos
//! divided by the clean run's accuracy. The `none` scenario replays an
//! empty plan and must retain exactly 1.0 — a built-in self-test that
//! the fault machinery is invisible when unused.
//!
//! Determinism under any worker count follows the engine idiom
//! ([`crate::engine`]): per-item seeds come from
//! [`crate::engine::derive_seed`] on `(master, cell, rep)` alone, items
//! land in a slot array indexed by item id, and cells fold in item
//! order.

use crate::engine::derive_seed;
use crate::report::TextTable;
use crate::stats::SummaryStats;
use dsct_chaos::{chaos_replay, ChaosConfig, ChaosPlan};
use dsct_online::OnlineConfig;
use dsct_workload::{
    generate_arrivals, ArrivalConfig, ArrivalTrace, MachineConfig, TaskConfig, ThetaDistribution,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosExpConfig {
    /// Arrivals per trace.
    pub n: usize,
    /// Machines.
    pub m: usize,
    /// Load factor λ.
    pub load: f64,
    /// Relative-deadline slack.
    pub deadline_slack: f64,
    /// Energy-budget ratio β over the trace horizon.
    pub beta: f64,
    /// Traces per scenario.
    pub replications: usize,
    /// Master seed for trace generation.
    pub base_seed: u64,
    /// Master seed for chaos plans.
    pub chaos_seed: u64,
}

impl Default for ChaosExpConfig {
    fn default() -> Self {
        Self {
            n: 60,
            m: 3,
            load: 1.0,
            deadline_slack: 2.0,
            beta: 0.5,
            replications: 24,
            base_seed: 2024,
            chaos_seed: 99,
        }
    }
}

impl ChaosExpConfig {
    /// Reduced configuration for smoke tests / quick runs.
    pub fn quick() -> Self {
        Self {
            n: 20,
            replications: 4,
            ..Self::default()
        }
    }

    fn arrival_config(&self) -> ArrivalConfig {
        ArrivalConfig {
            tasks: TaskConfig::paper(self.n, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
            machines: MachineConfig::paper_random(self.m),
            load: self.load,
            deadline_slack: self.deadline_slack,
            beta: self.beta,
        }
    }
}

/// The fault scenarios swept, in table order.
fn scenarios() -> Vec<(&'static str, ChaosConfig)> {
    let none = ChaosConfig {
        failures: 0,
        degradations: 0,
        shocks: 0,
        bursts: 0,
        ..ChaosConfig::default()
    };
    vec![
        ("none", none),
        (
            "failure",
            ChaosConfig {
                failures: 1,
                ..none
            },
        ),
        (
            "degrade",
            ChaosConfig {
                degradations: 1,
                ..none
            },
        ),
        ("shock", ChaosConfig { shocks: 1, ..none }),
        ("burst", ChaosConfig { bursts: 1, ..none }),
        ("all", ChaosConfig::default()),
    ]
}

/// Per-trace measurements (one replication of one scenario).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Item {
    clean: f64,
    disrupted: f64,
    retention: f64,
    failures: f64,
    spent: f64,
}

/// One swept scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosPoint {
    /// Scenario name.
    pub scenario: String,
    /// Clean-run realized accuracy over the base tasks.
    pub clean: SummaryStats,
    /// Disrupted-run realized accuracy over the base tasks.
    pub disrupted: SummaryStats,
    /// Retention `disrupted / clean`.
    pub retention: SummaryStats,
    /// Tasks cut mid-run by machine failures, per trace.
    pub failures: SummaryStats,
    /// Realized energy of the disrupted run (J).
    pub spent: SummaryStats,
}

/// Full experiment data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosResult {
    /// Configuration used.
    pub config: ChaosExpConfig,
    /// One point per scenario.
    pub points: Vec<ChaosPoint>,
}

/// Accuracy realized by the first `base_n` outcomes (base-trace tasks;
/// burst ids sort after every base id, so they occupy the tail).
fn base_accuracy(tasks: &[dsct_exec::TaskOutcome], base_n: usize) -> f64 {
    tasks.iter().take(base_n).map(|t| t.accuracy).sum()
}

fn measure(cfg: &ChaosExpConfig, chaos: &ChaosConfig, seed: u64, chaos_seed: u64) -> Item {
    let trace: ArrivalTrace =
        generate_arrivals(&cfg.arrival_config(), seed).expect("validated config");
    let ocfg = OnlineConfig::default();
    let plan = ChaosPlan::generate(
        chaos,
        chaos_seed,
        trace.horizon(),
        trace.park.len(),
        trace.budget,
    );
    let rcfg = dsct_online::ReplayConfig {
        online: ocfg,
        ..Default::default()
    };
    let clean_report = dsct_online::replay(&trace, &rcfg).expect("valid config");
    let chaos_report = chaos_replay(&trace, &ocfg, &plan).expect("valid config");
    let clean = base_accuracy(&clean_report.trace.tasks, trace.tasks.len());
    let disrupted = base_accuracy(&chaos_report.report.trace.tasks, trace.tasks.len());
    Item {
        clean,
        disrupted,
        retention: disrupted / clean.max(1e-12),
        failures: chaos_report.summary.online.failures as f64,
        spent: chaos_report.summary.online.spent_energy,
    }
}

/// Runs the sweep on `threads` workers (`0` = all cores). The returned
/// data is bit-identical for any worker count.
pub fn run(cfg: &ChaosExpConfig, threads: usize) -> ChaosResult {
    let cells = scenarios();
    let items: Vec<(usize, usize)> = (0..cells.len())
        .flat_map(|c| (0..cfg.replications).map(move |rep| (c, rep)))
        .collect();
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(items.len().max(1));

    let work = |&(c, rep): &(usize, usize)| {
        // The trace seed depends on the replication only, so every
        // scenario disrupts the *same* traces; the chaos seed differs
        // per cell so scenarios draw independent fault parameters.
        let seed = derive_seed(cfg.base_seed, 0, rep as u64);
        let chaos_seed = derive_seed(cfg.chaos_seed, c as u64, rep as u64);
        measure(cfg, &cells[c].1, seed, chaos_seed)
    };

    let mut slots: Vec<Option<Item>> = vec![None; items.len()];
    if workers <= 1 {
        for (idx, item) in items.iter().enumerate() {
            slots[idx] = Some(work(item));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Item)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let items = &items;
                let work = &work;
                scope.spawn(move || loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    let _ = tx.send((idx, work(&items[idx])));
                });
            }
            drop(tx);
            for (idx, item) in rx {
                slots[idx] = Some(item);
            }
        });
    }

    // Fold in item order: deterministic aggregates.
    let mut points: Vec<ChaosPoint> = cells
        .iter()
        .map(|(name, _)| ChaosPoint {
            scenario: name.to_string(),
            clean: SummaryStats::new(),
            disrupted: SummaryStats::new(),
            retention: SummaryStats::new(),
            failures: SummaryStats::new(),
            spent: SummaryStats::new(),
        })
        .collect();
    for (idx, &(c, _)) in items.iter().enumerate() {
        let item = slots[idx].expect("every item executed");
        let p = &mut points[c];
        p.clean.push(item.clean);
        p.disrupted.push(item.disrupted);
        p.retention.push(item.retention);
        p.failures.push(item.failures);
        p.spent.push(item.spent);
    }
    ChaosResult {
        config: cfg.clone(),
        points,
    }
}

/// Text rendering.
pub fn table(result: &ChaosResult) -> TextTable {
    let mut t = TextTable::new([
        "scenario",
        "clean",
        "disrupted",
        "retention%",
        "cut",
        "spent",
    ]);
    for p in &result.points {
        t.row([
            p.scenario.clone(),
            format!("{:.3}", p.clean.mean()),
            format!("{:.3}", p.disrupted.mean()),
            format!("{:.2}", 100.0 * p.retention.mean()),
            format!("{:.2}", p.failures.mean()),
            format!("{:.0}", p.spent.mean()),
        ]);
    }
    t
}

/// Human summary.
pub fn render(result: &ChaosResult) -> String {
    let note = result
        .points
        .iter()
        .find(|p| p.scenario == "all")
        .map(|p| {
            format!(
                "Under the combined fault scenario the service retains {:.1}% of the \
                 clean-run accuracy on the base tasks ({:.2} mid-run cuts per trace).",
                100.0 * p.retention.mean(),
                p.failures.mean(),
            )
        })
        .unwrap_or_default();
    format!("{}\n{note}\n", table(result).render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_scenario_retains_everything_and_workers_are_invisible() {
        let cfg = ChaosExpConfig::quick();
        let a = run(&cfg, 1);
        let b = run(&cfg, 4);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "1-worker and 4-worker sweeps must be byte-identical"
        );
        let none = &a.points[0];
        assert_eq!(none.scenario, "none");
        assert!(
            (none.retention.mean() - 1.0).abs() < 1e-12,
            "an empty chaos plan must retain exactly the clean accuracy"
        );
        for p in &a.points {
            assert!(p.clean.mean() > 0.0);
            assert!(p.retention.min() > 0.0);
        }
    }
}
