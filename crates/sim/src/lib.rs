#![warn(missing_docs)]

//! Experiment harness regenerating every table and figure of the DSCT-EA
//! paper's evaluation (§6).
//!
//! Each experiment lives in [`experiments`] with a `Config` (defaulting to
//! the paper's parameters), a `run` entry point returning a serializable
//! result struct, and a text renderer that prints the same rows/series the
//! paper reports. The `dsct-experiments` binary drives them all.
//!
//! Replications are independent and run in parallel (rayon); every
//! experiment is deterministic for a given base seed.

pub mod experiments;
pub mod report;
pub mod runner;
pub mod stats;
