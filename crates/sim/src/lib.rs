#![warn(missing_docs)]

//! Experiment harness regenerating every table and figure of the DSCT-EA
//! paper's evaluation (§6).
//!
//! Each experiment lives in [`experiments`] with a `Config` (defaulting to
//! the paper's parameters), a `run` entry point returning a serializable
//! result struct, and a text renderer that prints the same rows/series the
//! paper reports. The `dsct-experiments` binary drives them all.
//!
//! Grid experiments execute on the deterministic multi-threaded
//! [`engine`]: (cell × replication × solver) work items on scoped worker
//! threads, per-item seeds derived from the grid coordinates so results
//! are bit-identical regardless of thread count. The simpler [`runner`]
//! remains for single-loop replication sweeps.

pub mod engine;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod stats;
