//! Shard-kill plans: whole-cell failures for the sharded server.
//!
//! A [`ShardKillPlan`] is the cell-granular sibling of [`crate::ChaosPlan`]:
//! each event names a *shard* whose machines all fail at once. The plan
//! is pure data — `dsct-chaos` knows nothing about the server — and the
//! consumer (`dsct-server`) turns one event into a deterministic
//! sequence of per-machine [`dsct_online::Disruption::MachineFailure`]
//! injections plus a drain of the cell's pending pool into the
//! surviving shards.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One shard kill: every machine of shard `shard` fails at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardKillEvent {
    /// Firing time on the server clock (seconds).
    pub at: f64,
    /// The event's index in the plan (the RNG discriminator).
    pub index: usize,
    /// Index of the shard to kill.
    pub shard: usize,
}

/// A deterministic shard-kill plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardKillPlan {
    /// Seed the plan was generated from.
    pub chaos_seed: u64,
    /// Events sorted by `(at, index)`; shards are distinct (a shard
    /// dies at most once per plan).
    pub events: Vec<ShardKillEvent>,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardKillPlan {
    /// Generates `kills` shard kills over `shards` cells within
    /// `horizon`. Each event draws from its own `(chaos_seed, index)`
    /// ChaCha stream (the [`crate::ChaosPlan`] recipe), so the plan is a
    /// pure function of its arguments. Victims are sampled without
    /// replacement in index order; at least one shard always survives
    /// (`kills` is capped at `shards − 1`). Kill times land in the
    /// middle of the horizon, where there is routed work both to cut
    /// and to drain.
    ///
    /// # Panics
    /// Panics when `shards == 0` while `kills > 0`, or when `horizon`
    /// is not finite and non-negative.
    pub fn generate(chaos_seed: u64, horizon: f64, shards: usize, kills: usize) -> ShardKillPlan {
        assert!(
            horizon.is_finite() && horizon >= 0.0,
            "horizon must be finite and non-negative, got {horizon}"
        );
        assert!(shards > 0 || kills == 0, "shard kills need shards");
        let kills = kills.min(shards.saturating_sub(1));
        let mut alive: Vec<usize> = (0..shards).collect();
        let mut events = Vec::with_capacity(kills);
        for index in 0..kills {
            let mut rng =
                ChaCha8Rng::seed_from_u64(splitmix64(chaos_seed ^ splitmix64(index as u64)));
            let at = horizon * rng.gen_range(0.15..0.75);
            let victim = alive.remove(rng.gen_range(0..alive.len()));
            events.push(ShardKillEvent {
                at,
                index,
                shard: victim,
            });
        }
        events.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.index.cmp(&b.index)));
        ShardKillPlan { chaos_seed, events }
    }
}

/// What a [`ShardEvent`] does to its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardEventKind {
    /// Every machine of the shard fails at once (see [`ShardKillEvent`]).
    Kill,
    /// The shard respawns: a fresh cell over the original machine
    /// group, rendezvous tenants handed back, budget re-federated.
    Recover,
}

/// One lifecycle event of a shard chaos plan: a kill or a recovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardEvent {
    /// Firing time on the server clock (seconds).
    pub at: f64,
    /// The event's index in the plan (the RNG discriminator; unique
    /// across kills and recoveries).
    pub index: usize,
    /// Index of the shard the event targets.
    pub shard: usize,
    /// Kill or recover.
    pub kind: ShardEventKind,
}

/// A deterministic shard lifecycle plan: kills, optionally paired with
/// later recoveries. The kill→recover generalization of
/// [`ShardKillPlan`] — pure data with the same `(seed, index)` purity
/// contract; the consumer (`dsct-server` / `dsct-gateway`) fires each
/// event against the live server. Killing a dead shard or recovering a
/// live one is a no-op at the consumer, so overlapping plans compose
/// safely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardChaosPlan {
    /// Seed the plan was generated from.
    pub chaos_seed: u64,
    /// Events sorted by `(at, index)`.
    pub events: Vec<ShardEvent>,
}

impl ShardChaosPlan {
    /// Generates `kills` shard kills (exactly [`ShardKillPlan::generate`]
    /// with the same arguments — byte-identical kill times and victims)
    /// and pairs each with a recovery `recover_delay` seconds later.
    /// Recovery events take plan indices after every kill index, so the
    /// two halves never collide in the `(at, index)` order even when a
    /// recovery lands on another kill's timestamp.
    ///
    /// # Panics
    /// Panics on the [`ShardKillPlan::generate`] preconditions, or when
    /// `recover_delay` is not finite and positive.
    pub fn kill_recover(
        chaos_seed: u64,
        horizon: f64,
        shards: usize,
        kills: usize,
        recover_delay: f64,
    ) -> ShardChaosPlan {
        assert!(
            recover_delay.is_finite() && recover_delay > 0.0,
            "recover_delay must be finite and positive, got {recover_delay}"
        );
        let kill_plan = ShardKillPlan::generate(chaos_seed, horizon, shards, kills);
        let n = kill_plan.events.len();
        let mut events: Vec<ShardEvent> = Vec::with_capacity(2 * n);
        for e in &kill_plan.events {
            events.push(ShardEvent {
                at: e.at,
                index: e.index,
                shard: e.shard,
                kind: ShardEventKind::Kill,
            });
            events.push(ShardEvent {
                at: e.at + recover_delay,
                index: n + e.index,
                shard: e.shard,
                kind: ShardEventKind::Recover,
            });
        }
        events.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.index.cmp(&b.index)));
        ShardChaosPlan { chaos_seed, events }
    }

    /// A kills-only plan: `plan`'s events verbatim, no recoveries.
    /// Lets one replay driver accept either plan shape.
    pub fn kills_only(plan: &ShardKillPlan) -> ShardChaosPlan {
        ShardChaosPlan {
            chaos_seed: plan.chaos_seed,
            events: plan
                .events
                .iter()
                .map(|e| ShardEvent {
                    at: e.at,
                    index: e.index,
                    shard: e.shard,
                    kind: ShardEventKind::Kill,
                })
                .collect(),
        }
    }

    /// The empty plan (a plain replay, no shard events).
    pub fn none(chaos_seed: u64) -> ShardChaosPlan {
        ShardChaosPlan {
            chaos_seed,
            events: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_and_victims_distinct() {
        let a = ShardKillPlan::generate(7, 10.0, 8, 3);
        let b = ShardKillPlan::generate(7, 10.0, 8, 3);
        assert_eq!(a, b);
        assert_ne!(a, ShardKillPlan::generate(8, 10.0, 8, 3));
        assert_eq!(a.events.len(), 3);
        let mut shards: Vec<usize> = a.events.iter().map(|e| e.shard).collect();
        shards.sort_unstable();
        shards.dedup();
        assert_eq!(shards.len(), 3, "a shard dies at most once");
        assert!(a
            .events
            .windows(2)
            .all(|w| w[0].at < w[1].at || (w[0].at == w[1].at && w[0].index < w[1].index)));
    }

    #[test]
    fn at_least_one_shard_survives() {
        let p = ShardKillPlan::generate(3, 5.0, 4, 9);
        assert_eq!(p.events.len(), 3, "kills cap at shards − 1");
        assert!(ShardKillPlan::generate(1, 5.0, 1, 5).events.is_empty());
        assert!(ShardKillPlan::generate(1, 5.0, 0, 0).events.is_empty());
    }

    #[test]
    fn kill_recover_pairs_and_orders_events() {
        let plan = ShardChaosPlan::kill_recover(7, 10.0, 8, 3, 1.5);
        assert_eq!(plan, ShardChaosPlan::kill_recover(7, 10.0, 8, 3, 1.5));
        assert_eq!(plan.events.len(), 6);
        let kills = ShardKillPlan::generate(7, 10.0, 8, 3);
        for e in &kills.events {
            let k = plan
                .events
                .iter()
                .find(|p| p.kind == ShardEventKind::Kill && p.shard == e.shard)
                .expect("kill present");
            assert_eq!((k.at, k.index), (e.at, e.index), "kill half is verbatim");
            let r = plan
                .events
                .iter()
                .find(|p| p.kind == ShardEventKind::Recover && p.shard == e.shard)
                .expect("recovery present");
            assert_eq!(r.at, e.at + 1.5);
            assert_eq!(r.index, kills.events.len() + e.index);
        }
        assert!(plan
            .events
            .windows(2)
            .all(|w| w[0].at < w[1].at || (w[0].at == w[1].at && w[0].index < w[1].index)));
        let indices: std::collections::BTreeSet<usize> =
            plan.events.iter().map(|e| e.index).collect();
        assert_eq!(indices.len(), plan.events.len(), "indices unique");
    }

    #[test]
    fn kills_only_conversion_is_verbatim() {
        let kills = ShardKillPlan::generate(11, 8.0, 4, 2);
        let plan = ShardChaosPlan::kills_only(&kills);
        assert_eq!(plan.events.len(), kills.events.len());
        for (p, e) in plan.events.iter().zip(&kills.events) {
            assert_eq!(
                (p.at, p.index, p.shard, p.kind),
                (e.at, e.index, e.shard, ShardEventKind::Kill)
            );
        }
        assert!(ShardChaosPlan::none(3).events.is_empty());
    }
}
