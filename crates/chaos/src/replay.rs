//! Chaos replay: merging a fault plan into an arrival trace.

use crate::plan::{ChaosEventKind, ChaosPlan};
use dsct_online::{
    Disruption, OnlineConfig, OnlineError, OnlineReport, OnlineService, OnlineSummary,
};
use dsct_workload::{synthesize_burst, ArrivalTrace, TaskConfig, ThetaDistribution};
use serde::{Deserialize, Serialize};

/// Deterministic aggregate of one chaos replay — the byte-comparable
/// payload of the chaos determinism contract: equal `(trace, config,
/// plan)` triples serialize to equal summaries regardless of solver
/// parallelism or harness thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosSummary {
    /// The underlying service summary (includes the failure count).
    pub online: OnlineSummary,
    /// Seed of the applied plan.
    pub chaos_seed: u64,
    /// Events applied, by kind.
    pub failures_injected: usize,
    /// Speed degradations applied.
    pub degradations_injected: usize,
    /// Budget shocks applied.
    pub shocks_injected: usize,
    /// Burst tasks submitted on top of the base trace.
    pub burst_arrivals: usize,
}

/// Everything a chaos replay reports.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The full service report of the disrupted run.
    pub report: OnlineReport,
    /// The deterministic summary.
    pub summary: ChaosSummary,
}

/// The θ recipe burst tasks are synthesized with (the paper's uniform
/// heterogeneous scenario, one task per call is resized by the burst).
fn burst_task_config() -> TaskConfig {
    TaskConfig::paper(1, ThetaDistribution::Uniform { min: 0.1, max: 2.0 })
}

/// Replays `trace` through a fresh [`OnlineService`] with `plan`'s
/// events merged in by firing time (an event fires before any arrival
/// sharing its timestamp). An empty plan reduces to
/// [`dsct_online::replay`] — bit for bit.
pub fn chaos_replay(
    trace: &ArrivalTrace,
    cfg: &OnlineConfig,
    plan: &ChaosPlan,
) -> Result<ChaosReport, OnlineError> {
    let mut svc = OnlineService::new(trace.park.clone(), trace.budget, *cfg)?;
    let mut failures_injected = 0usize;
    let mut degradations_injected = 0usize;
    let mut shocks_injected = 0usize;
    let mut burst_arrivals = 0usize;
    let tcfg = burst_task_config();

    let mut next_task = 0usize;
    for event in &plan.events {
        while next_task < trace.tasks.len() && trace.tasks[next_task].arrival < event.at {
            svc.try_submit(&trace.tasks[next_task])?;
            next_task += 1;
        }
        match event.kind {
            ChaosEventKind::MachineFailure { machine } => {
                svc.inject(event.at, &Disruption::MachineFailure { machine })?;
                failures_injected += 1;
            }
            ChaosEventKind::SpeedDegradation { machine, factor } => {
                svc.inject(event.at, &Disruption::SpeedDegradation { machine, factor })?;
                degradations_injected += 1;
            }
            ChaosEventKind::BudgetShock { delta } => {
                svc.inject(event.at, &Disruption::BudgetShock { delta })?;
                shocks_injected += 1;
            }
            ChaosEventKind::ArrivalBurst {
                seed,
                count,
                first_id,
                slack,
            } => {
                let burst =
                    synthesize_burst(&tcfg, seed, count, event.at, &trace.park, slack, first_id);
                for task in &burst {
                    svc.try_submit(task)?;
                    burst_arrivals += 1;
                }
            }
        }
    }
    for task in &trace.tasks[next_task..] {
        svc.try_submit(task)?;
    }
    let report = svc.finish();
    let summary = ChaosSummary {
        online: report.summary.clone(),
        chaos_seed: plan.chaos_seed,
        failures_injected,
        degradations_injected,
        shocks_injected,
        burst_arrivals,
    };
    Ok(ChaosReport { report, summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ChaosConfig, ChaosPlan};
    use dsct_workload::{generate_arrivals, ArrivalConfig, MachineConfig};

    fn trace(seed: u64) -> ArrivalTrace {
        let cfg = ArrivalConfig {
            tasks: TaskConfig::paper(24, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
            machines: MachineConfig::paper_random(3),
            load: 1.0,
            deadline_slack: 2.0,
            beta: 0.5,
        };
        generate_arrivals(&cfg, seed).expect("validated config")
    }

    fn plan_for(trace: &ArrivalTrace, chaos_seed: u64) -> ChaosPlan {
        ChaosPlan::generate(
            &ChaosConfig::default(),
            chaos_seed,
            trace.horizon(),
            trace.park.len(),
            trace.budget,
        )
    }

    #[test]
    fn empty_plan_reduces_to_the_plain_replay() {
        let t = trace(5);
        let empty = ChaosPlan {
            chaos_seed: 0,
            events: Vec::new(),
        };
        let cfg = OnlineConfig::default();
        let chaos = chaos_replay(&t, &cfg, &empty).unwrap();
        let rcfg = dsct_online::ReplayConfig {
            online: cfg,
            ..Default::default()
        };
        let plain = dsct_online::replay(&t, &rcfg).unwrap();
        assert_eq!(
            serde_json::to_string(&chaos.summary.online).unwrap(),
            serde_json::to_string(&plain.summary).unwrap(),
            "an empty chaos plan must be invisible"
        );
        assert_eq!(chaos.report.trace.tasks, plain.trace.tasks);
    }

    #[test]
    fn replays_are_deterministic_across_solver_parallelism() {
        let t = trace(11);
        let p = plan_for(&t, 77);
        let run = |par: usize| {
            let cfg = OnlineConfig {
                solver_parallelism: par,
                ..OnlineConfig::default()
            };
            let r = chaos_replay(&t, &cfg, &p).unwrap();
            serde_json::to_string(&r.summary).unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(2), "solver parallelism 2 changed the replay");
        assert_eq!(one, run(8), "solver parallelism 8 changed the replay");
    }

    #[test]
    fn disrupted_runs_stay_ledger_consistent() {
        let t = trace(3);
        let p = plan_for(&t, 13);
        let r = chaos_replay(&t, &OnlineConfig::default(), &p).unwrap();
        assert_eq!(r.summary.failures_injected, 1);
        assert_eq!(r.summary.degradations_injected, 1);
        assert_eq!(r.summary.shocks_injected, 1);
        assert_eq!(r.summary.burst_arrivals, 3);
        assert_eq!(
            r.summary.online.arrivals,
            t.tasks.len() + r.summary.burst_arrivals
        );
        // Everything settled; nothing left committed.
        assert_eq!(r.report.ledger.committed(), 0.0);
        // Spending never exceeds the largest budget the run ever had
        // (a shock can only raise it above the initial value by 25%).
        let cap = t.budget.max(r.summary.online.budget) * 1.25 + 1e-6;
        assert!(r.summary.online.spent_energy <= cap);
    }

    #[test]
    fn burst_tasks_are_recorded_with_their_synthetic_ids() {
        let t = trace(21);
        let p = plan_for(&t, 8);
        let r = chaos_replay(&t, &OnlineConfig::default(), &p).unwrap();
        let burst_decisions = r
            .report
            .decisions
            .iter()
            .filter(|(id, _)| *id >= crate::plan::BURST_ID_BASE)
            .count();
        assert_eq!(burst_decisions, r.summary.burst_arrivals);
    }
}
