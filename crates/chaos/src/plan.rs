//! Chaos plans: deterministic fault-event generation.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How many events of each kind a [`ChaosPlan`] carries, plus the knobs
/// shaping them. Counts of zero are valid (an all-zero config yields an
/// empty plan, and [`crate::chaos_replay`] of an empty plan reduces to
/// [`dsct_online::replay`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Permanent machine failures.
    pub failures: usize,
    /// Persistent multiplicative speed degradations.
    pub degradations: usize,
    /// Budget shocks (signed; biased toward cuts).
    pub shocks: usize,
    /// Unplanned arrival bursts.
    pub bursts: usize,
    /// Tasks per arrival burst.
    pub burst_tasks: usize,
    /// Relative-deadline slack of burst tasks (the
    /// [`dsct_workload::generate_arrivals`] rule).
    pub deadline_slack: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            failures: 1,
            degradations: 1,
            shocks: 1,
            bursts: 1,
            burst_tasks: 3,
            deadline_slack: 2.0,
        }
    }
}

impl ChaosConfig {
    /// Total number of events a plan with this configuration carries.
    pub fn num_events(&self) -> usize {
        self.failures + self.degradations + self.shocks + self.bursts
    }
}

/// What happens at a [`ChaosEvent`]'s firing time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChaosEventKind {
    /// Machine `machine` fails permanently
    /// ([`dsct_online::Disruption::MachineFailure`]).
    MachineFailure {
        /// Index of the failing machine.
        machine: usize,
    },
    /// Machine `machine` slows to `factor` of its current speed
    /// ([`dsct_online::Disruption::SpeedDegradation`]).
    SpeedDegradation {
        /// Index of the degrading machine.
        machine: usize,
        /// Multiplicative speed factor in `(0, 1]`.
        factor: f64,
    },
    /// The global budget shifts by `delta` joules
    /// ([`dsct_online::Disruption::BudgetShock`]).
    BudgetShock {
        /// Signed budget change in joules.
        delta: f64,
    },
    /// `count` unplanned tasks arrive at once, synthesized from `seed`
    /// by [`dsct_workload::synthesize_burst`]. Burst ids start at
    /// `first_id` (disjoint from any base-trace id by construction).
    ArrivalBurst {
        /// Burst synthesis seed.
        seed: u64,
        /// Number of tasks in the burst.
        count: usize,
        /// Id of the burst's first task.
        first_id: u64,
        /// Relative-deadline slack of the burst tasks.
        slack: f64,
    },
}

/// One timed fault event of a [`ChaosPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// Firing time on the service clock (seconds).
    pub at: f64,
    /// The event's index in the plan's canonical layout — the sole RNG
    /// discriminator besides the chaos seed.
    pub index: usize,
    /// What fires.
    pub kind: ChaosEventKind,
}

/// A deterministic fault plan for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed the plan was generated from.
    pub chaos_seed: u64,
    /// Events sorted by `(at, index)`.
    pub events: Vec<ChaosEvent>,
}

/// Base id for burst-synthesized tasks: far above any realistic
/// base-trace id, so chaos arrivals never collide with planned ones
/// (and sort after them, letting consumers split base from burst
/// outcomes by position).
pub const BURST_ID_BASE: u64 = 1 << 40;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-event RNG: seeded by `(chaos_seed, index)` alone.
fn event_rng(chaos_seed: u64, index: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(splitmix64(chaos_seed ^ splitmix64(index as u64)))
}

impl ChaosPlan {
    /// Generates the plan for a trace of the given shape. Events are
    /// laid out by index — failures first, then degradations, shocks,
    /// bursts — and each draws from its own `(chaos_seed, index)` RNG,
    /// so inserting or removing events of one kind never changes the
    /// others.
    ///
    /// # Panics
    /// Panics when `machines == 0` while the config asks for machine
    /// events, or when `horizon`/`budget` are not finite and
    /// non-negative.
    pub fn generate(
        cfg: &ChaosConfig,
        chaos_seed: u64,
        horizon: f64,
        machines: usize,
        budget: f64,
    ) -> ChaosPlan {
        assert!(
            horizon.is_finite() && horizon >= 0.0,
            "horizon must be finite and non-negative, got {horizon}"
        );
        assert!(
            budget.is_finite() && budget >= 0.0,
            "budget must be finite and non-negative, got {budget}"
        );
        assert!(
            machines > 0 || cfg.failures + cfg.degradations == 0,
            "machine events need at least one machine"
        );
        let mut events = Vec::with_capacity(cfg.num_events());
        let mut index = 0usize;
        for _ in 0..cfg.failures {
            let mut rng = event_rng(chaos_seed, index);
            // Failures land in the middle of the horizon so there is
            // work both to cut and to recover.
            let at = horizon * rng.gen_range(0.15..0.75);
            let machine = rng.gen_range(0..machines);
            events.push(ChaosEvent {
                at,
                index,
                kind: ChaosEventKind::MachineFailure { machine },
            });
            index += 1;
        }
        for _ in 0..cfg.degradations {
            let mut rng = event_rng(chaos_seed, index);
            let at = horizon * rng.gen_range(0.05..0.85);
            let machine = rng.gen_range(0..machines);
            let factor = rng.gen_range(0.3..0.9);
            events.push(ChaosEvent {
                at,
                index,
                kind: ChaosEventKind::SpeedDegradation { machine, factor },
            });
            index += 1;
        }
        for _ in 0..cfg.shocks {
            let mut rng = event_rng(chaos_seed, index);
            let at = horizon * rng.gen_range(0.05..0.85);
            // Biased toward cuts: shocks stress recovery, not slack.
            let delta = budget * rng.gen_range(-0.5..0.25);
            events.push(ChaosEvent {
                at,
                index,
                kind: ChaosEventKind::BudgetShock { delta },
            });
            index += 1;
        }
        for b in 0..cfg.bursts {
            let mut rng = event_rng(chaos_seed, index);
            let at = horizon * rng.gen_range(0.0..0.7);
            let seed: u64 = rng.gen();
            events.push(ChaosEvent {
                at,
                index,
                kind: ChaosEventKind::ArrivalBurst {
                    seed,
                    count: cfg.burst_tasks,
                    first_id: BURST_ID_BASE + (b as u64) * 1_000_000,
                    slack: cfg.deadline_slack,
                },
            });
            index += 1;
        }
        events.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.index.cmp(&b.index)));
        ChaosPlan { chaos_seed, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> ChaosPlan {
        ChaosPlan::generate(&ChaosConfig::default(), seed, 10.0, 3, 500.0)
    }

    #[test]
    fn plans_are_pure_functions_of_seed_and_shape() {
        assert_eq!(plan(7), plan(7));
        assert_ne!(plan(7), plan(8));
    }

    #[test]
    fn events_are_sorted_and_well_formed() {
        let p = ChaosPlan::generate(
            &ChaosConfig {
                failures: 3,
                degradations: 3,
                shocks: 3,
                bursts: 2,
                ..ChaosConfig::default()
            },
            42,
            10.0,
            4,
            500.0,
        );
        assert_eq!(p.events.len(), 11);
        assert!(p
            .events
            .windows(2)
            .all(|w| w[0].at <= w[1].at || (w[0].at == w[1].at && w[0].index < w[1].index)));
        for e in &p.events {
            assert!(e.at >= 0.0 && e.at <= 10.0);
            match e.kind {
                ChaosEventKind::MachineFailure { machine } => assert!(machine < 4),
                ChaosEventKind::SpeedDegradation { machine, factor } => {
                    assert!(machine < 4);
                    assert!(factor > 0.0 && factor <= 1.0);
                }
                ChaosEventKind::BudgetShock { delta } => {
                    assert!(delta.abs() <= 250.0 + 1e-9);
                }
                ChaosEventKind::ArrivalBurst {
                    count, first_id, ..
                } => {
                    assert_eq!(count, 3);
                    assert!(first_id >= BURST_ID_BASE);
                }
            }
        }
    }

    #[test]
    fn removing_one_kind_leaves_the_others_untouched() {
        // Per-event RNGs keyed by (seed, index): dropping the trailing
        // burst kind must not change any earlier event.
        let full = ChaosPlan::generate(&ChaosConfig::default(), 9, 10.0, 3, 500.0);
        let no_bursts = ChaosPlan::generate(
            &ChaosConfig {
                bursts: 0,
                ..ChaosConfig::default()
            },
            9,
            10.0,
            3,
            500.0,
        );
        let keep: Vec<&ChaosEvent> = full
            .events
            .iter()
            .filter(|e| !matches!(e.kind, ChaosEventKind::ArrivalBurst { .. }))
            .collect();
        let kept: Vec<&ChaosEvent> = no_bursts.events.iter().collect();
        assert_eq!(keep, kept);
    }

    #[test]
    fn empty_config_yields_an_empty_plan() {
        let p = ChaosPlan::generate(
            &ChaosConfig {
                failures: 0,
                degradations: 0,
                shocks: 0,
                bursts: 0,
                ..ChaosConfig::default()
            },
            1,
            10.0,
            0,
            0.0,
        );
        assert!(p.events.is_empty());
    }
}
