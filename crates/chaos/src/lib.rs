#![warn(missing_docs)]

//! Deterministic fault injection for DSCT-EA: chaos plans and replay.
//!
//! The offline executor ([`dsct_exec::fault`]) and the online service
//! ([`dsct_online::OnlineService::inject`]) both accept injected faults;
//! this crate generates the faults *deterministically* and drives full
//! disrupted replays:
//!
//! - [`ChaosPlan`] — a timed list of [`ChaosEvent`]s (machine failures,
//!   persistent speed degradations, budget shocks, arrival bursts).
//!   Every event is a pure function of `(chaos_seed, event_index)` and
//!   the trace shape (horizon, machine count, budget), so two plans for
//!   the same trace and seed are identical down to the bit — no global
//!   RNG state, no dependence on generation order;
//! - [`chaos_replay`] — merges a plan into an
//!   [`dsct_workload::ArrivalTrace`] by time and replays the disrupted
//!   stream through a fresh [`dsct_online::OnlineService`], returning
//!   the ordinary [`dsct_online::OnlineReport`] plus a serializable
//!   [`ChaosSummary`]. Replays are byte-identical for any solver
//!   parallelism and any harness thread count (the determinism tests in
//!   the facade crate compare serialized summaries across both);
//! - [`ShardKillPlan`] — cell-granular failures for the sharded server
//!   (`dsct-server`): each event kills a whole shard, which the server
//!   turns into per-machine failures plus a deterministic drain of the
//!   cell's pending pool into surviving shards. Pure data, same
//!   `(seed, index)` purity contract as [`ChaosPlan`];
//! - [`ShardChaosPlan`] — the kill→recover generalization: each
//!   [`ShardEvent`] kills *or* respawns a shard, so one plan drives
//!   full lifecycle chaos through `dsct-server` / `dsct-gateway`.
//!
//! # Synthesized task-id ranges
//!
//! Chaos bursts synthesize arrivals with ids from [`BURST_ID_BASE`]
//! (`1 << 40`) upward; the ingestion gateway (`dsct-gateway`) synthesizes
//! quota-retry ids from `RETRY_ID_BASE` (`1 << 44`) upward. Trace
//! generators stay below `1 << 40`. The three ranges are disjoint by
//! construction and the gateway rejects submissions that stray into a
//! reserved range with a typed error instead of double-accounting.

mod plan;
mod replay;
mod shard;

pub use plan::{ChaosConfig, ChaosEvent, ChaosEventKind, ChaosPlan, BURST_ID_BASE};
pub use replay::{chaos_replay, ChaosReport, ChaosSummary};
pub use shard::{ShardChaosPlan, ShardEvent, ShardEventKind, ShardKillEvent, ShardKillPlan};
