#![warn(missing_docs)]

//! Facade crate for the DSCT-EA workspace: energy-aware scheduling of
//! compressible machine-learning inference tasks (reproduction of
//! da Silva Barros et al., ICPP 2024).
//!
//! Re-exports every sub-crate under a stable path so downstream users can
//! depend on a single crate:
//!
//! ```
//! use dsct_ea::prelude::*;
//! ```
//!
//! See the individual crates for details:
//! - [`accuracy`] — piecewise-linear accuracy models;
//! - [`machines`] — machine/GPU substrate;
//! - [`lp`] — the revised-simplex LP solver;
//! - [`mip`] — the branch-and-bound MIP solver;
//! - [`core`] — the scheduling algorithms (the paper's contribution);
//! - [`exec`] — discrete-event executor running schedules under jitter;
//! - [`workload`] — scenario generators from the paper's evaluation;
//! - [`online`] — arrival-driven service: rolling-horizon re-plans,
//!   admission control, and the energy ledger;
//! - [`chaos`] — deterministic fault-injection plans and chaos replays;
//! - [`server`] — sharded multi-tenant scheduling server: rendezvous
//!   tenant routing, per-shard cells, cross-shard budget federation;
//! - [`gateway`] — async ingestion front-end: bounded-mpsc producer
//!   lanes with a deterministic merge drain, per-tenant admission
//!   quotas, load-skew rebalancing, and shard recovery;
//! - [`sim`] — the experiment harness regenerating every table and figure.

pub use dsct_accuracy as accuracy;
pub use dsct_chaos as chaos;
pub use dsct_core as core;
pub use dsct_exec as exec;
pub use dsct_gateway as gateway;
pub use dsct_lp as lp;
pub use dsct_machines as machines;
pub use dsct_mip as mip;
pub use dsct_online as online;
pub use dsct_server as server;
pub use dsct_sim as sim;
pub use dsct_workload as workload;

/// Convenient glob-import surface with the most commonly used items.
pub mod prelude {
    pub use dsct_accuracy::{min_combine, ExponentialAccuracy, PwlAccuracy};
    pub use dsct_chaos::{chaos_replay, ChaosConfig, ChaosPlan};
    pub use dsct_core::{
        approx::ApproxOptions,
        fr_opt::FrOptOptions,
        guarantee::absolute_guarantee,
        problem::{Instance, Task},
        schedule::{FractionalSchedule, ScheduleKind},
        solver::{
            ApproxSolver, EdfSolver, FrOptSolver, LpSolver, MipSolver, Solution, SolveError,
            SolveStats, Solver, SolverContext,
        },
        staged::{
            Stage, StagedApproxSolver, StagedInstance, StagedSchedule, StagedSolution, StagedTask,
        },
    };
    pub use dsct_gateway::{replay_gateway, Gateway, GatewayConfig, QuotaConfig, RebalanceConfig};
    pub use dsct_machines::{DvfsMachine, DvfsPark, Machine, MachinePark};
    pub use dsct_online::{
        replay, AdmissionPolicy, Decision, Disruption, EnergyLedger, OnlineConfig, OnlineService,
        ReplanStrategy, ReplayConfig,
    };
    pub use dsct_server::{replay_sharded, Router, ScheduleServer, ServerConfig};
    pub use dsct_sim::engine::{ExperimentPlan, ExperimentRun};
    pub use dsct_workload::{
        generate_arrivals, generate_staged, ArrivalConfig, ArrivalTrace, DagShape, InstanceConfig,
        MachineConfig, OnlineTask, StagedConfig, TaskConfig, ThetaDistribution,
    };
}
