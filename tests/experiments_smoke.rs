//! End-to-end smoke tests of every experiment driver at quick scale,
//! asserting the paper's qualitative claims hold on each.

use dsct_sim::experiments::{fig1, fig2, fig3, fig4, fig5, fig6, table1};
use dsct_sim::runner::Execution;

#[test]
fn fig1_trend_is_positive_and_renders() {
    let r = fig1::run();
    assert!(r.trend_slope > 0.0);
    let text = fig1::render(&r);
    assert!(text.contains("Trend"));
    assert!(fig1::table(&r).to_csv().lines().count() > 10);
}

#[test]
fn fig2_fit_is_tight_and_concave() {
    let r = fig2::run(&fig2::Fig2Config::default());
    assert!(r.max_fit_error < 0.04);
    for w in r.points.windows(2) {
        assert!(
            w[1].pwl >= w[0].pwl - 1e-12,
            "pwl curve must be non-decreasing"
        );
    }
    assert!(fig2::render(&r).contains("breakpoints"));
}

#[test]
fn fig3_gap_far_below_guarantee() {
    let r = fig3::run(&fig3::Fig3Config::quick(), Execution::Parallel);
    for p in &r.points {
        assert!(
            p.gap.max() < p.guarantee_per_task / 2.0,
            "mu {}: observed gap {} not far below G/n {}",
            p.mu,
            p.gap.max(),
            p.guarantee_per_task
        );
    }
    assert!(fig3::render(&r).contains("pessimistic"));
}

#[test]
fn fig4_approx_scales_and_mip_does_not() {
    let r = fig4::run(&fig4::Fig4Config::quick());
    // The approximation's largest size stays fast; the MIP was only even
    // attempted at small sizes.
    let largest = r.by_tasks.last().expect("non-empty");
    assert!(largest.approx_time.mean() < 5.0);
    assert!(!largest.mip_attempted);
    let smallest = r.by_tasks.first().expect("non-empty");
    assert!(smallest.mip_attempted);
    // Where both ran, the approximation is faster on average.
    assert!(
        smallest.approx_time.mean() <= smallest.mip_time.mean(),
        "approx {} vs mip {}",
        smallest.approx_time.mean(),
        smallest.mip_time.mean()
    );
    assert!(fig4::render(&r).contains("(a) runtime"));
}

#[test]
fn table1_combinatorial_beats_simplex() {
    let r = table1::run(&table1::Table1Config::quick());
    for row in &r.rows {
        assert!(
            row.fr_opt_time.mean() < row.lp_time.mean(),
            "n {}: FR-OPT {} not faster than simplex {}",
            row.n,
            row.fr_opt_time.mean(),
            row.lp_time.mean()
        );
        assert!(
            row.max_rel_gap < 5e-4,
            "optimal values disagree: {}",
            row.max_rel_gap
        );
    }
}

#[test]
fn fig5_ordering_and_energy_gain() {
    let r = fig5::run(&fig5::Fig5Config::quick(), 0);
    // APPROX dominates both baselines at every β (within noise).
    for p in &r.points {
        assert!(
            p.approx.mean() >= p.edf_full.mean() - 0.02,
            "beta {}",
            p.beta
        );
        assert!(
            p.approx.mean() >= p.edf_levels.mean() - 0.02,
            "beta {}",
            p.beta
        );
        assert!(p.upper_bound.mean() >= p.approx.mean() - 1e-9);
    }
    // The headline: large energy savings at small accuracy loss.
    let gain = r.energy_gain.expect("reference reached");
    assert!(
        gain.energy_saved >= 0.5,
        "energy saved {}",
        gain.energy_saved
    );
    assert!(gain.accuracy_loss <= r.config.gain_tolerance + 1e-9);
}

#[test]
fn fig6_split_scenario_deviates_from_naive() {
    let uni = fig6::run(
        &fig6::Fig6Config::quick(fig6::Fig6Scenario::UniformTasks),
        Execution::Parallel,
    );
    let split = fig6::run(
        &fig6::Fig6Config::quick(fig6::Fig6Scenario::EarliestHighEfficient),
        Execution::Parallel,
    );
    assert!(split.mean_profile_deviation > uni.mean_profile_deviation);
    // In the split scenario at small β the less-efficient machine must
    // pick up work the naive profile denies it.
    let small_beta = &split.points[0];
    assert!(
        small_beta.p2.mean() > small_beta.naive_p2.mean() + 1e-3,
        "final p2 {} vs naive {}",
        small_beta.p2.mean(),
        small_beta.naive_p2.mean()
    );
}
