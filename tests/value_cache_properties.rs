//! Regression and property tests for the `ValueFnWorkspace` probe cache
//! and the probe-gated profile search.
//!
//! The cached `V(p)` evaluation must be a pure optimization: over many
//! random instances the full FR-OPT pipeline must land on the same
//! accuracy with the cache on and off, and the coordinate-ascent search
//! must never lose accuracy as it is allowed more sweeps.

use dsct_core::fr_opt::FrOptOptions;
use dsct_core::profile::naive_profile;
use dsct_core::profile_search::{profile_search, ProfileSearchOptions};
use dsct_core::solver::FrOptSolver;
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};

fn random_config(n: usize, m: usize, rho: f64, beta: f64) -> InstanceConfig {
    InstanceConfig {
        tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.1, max: 4.9 }),
        machines: MachineConfig::paper_random(m),
        rho,
        beta,
    }
}

/// Cache on vs. cache off agree to 1e-9 relative over ≥ 20 random seeds,
/// with shapes spanning tight and loose deadline/budget regimes.
#[test]
fn cached_and_cold_fr_opt_agree_over_random_seeds() {
    let shapes = [
        (12usize, 2usize, 0.2, 0.3),
        (20, 3, 0.35, 0.5),
        (25, 4, 0.6, 0.8),
        (15, 5, 0.1, 0.2),
    ];
    let mut checked = 0usize;
    for (si, &(n, m, rho, beta)) in shapes.iter().enumerate() {
        for seed in 0..6u64 {
            let inst = generate(&random_config(n, m, rho, beta), 1000 * si as u64 + seed);
            let cached = FrOptSolver::new().solve_typed(&inst);
            let cold = FrOptSolver::with_options(FrOptOptions {
                search: ProfileSearchOptions {
                    use_value_cache: false,
                    ..Default::default()
                },
                ..Default::default()
            })
            .solve_typed(&inst);
            let scale = cached.total_accuracy.abs().max(1.0);
            assert!(
                (cached.total_accuracy - cold.total_accuracy).abs() <= 1e-9 * scale,
                "seed {seed} shape {n}x{m}: cached {} vs cold {}",
                cached.total_accuracy,
                cold.total_accuracy
            );
            let stats = cached.search.expect("search ran").probe_stats;
            assert_eq!(stats.cold_probes, 0, "cached run must not fall back");
            assert!(stats.probes > 0, "cached run must count its probes");
            checked += 1;
        }
    }
    assert!(
        checked >= 20,
        "property needs at least 20 seeds, got {checked}"
    );
}

/// The incremental Δ-probe evaluator is a pure optimization: over the
/// same shape × seed grid as the cached-vs-cold property (24 instances),
/// FR-OPT with Δ-probes lands within 1e-9 of the fully cold pipeline,
/// and the incremental runs actually exercise the Δ path.
#[test]
fn incremental_and_cold_fr_opt_agree_over_random_seeds() {
    let shapes = [
        (12usize, 2usize, 0.2, 0.3),
        (20, 3, 0.35, 0.5),
        (25, 4, 0.6, 0.8),
        (15, 5, 0.1, 0.2),
    ];
    let mut checked = 0usize;
    let mut delta_served = 0u64;
    for (si, &(n, m, rho, beta)) in shapes.iter().enumerate() {
        for seed in 0..6u64 {
            let inst = generate(&random_config(n, m, rho, beta), 1000 * si as u64 + seed);
            let incremental = FrOptSolver::with_options(FrOptOptions {
                search: ProfileSearchOptions {
                    incremental_probes: true,
                    gate_threads: 1,
                    ..Default::default()
                },
                ..Default::default()
            })
            .solve_typed(&inst);
            let cold = FrOptSolver::with_options(FrOptOptions {
                search: ProfileSearchOptions {
                    use_value_cache: false,
                    incremental_probes: false,
                    ..Default::default()
                },
                ..Default::default()
            })
            .solve_typed(&inst);
            let scale = cold.total_accuracy.abs().max(1.0);
            assert!(
                (incremental.total_accuracy - cold.total_accuracy).abs() <= 1e-9 * scale,
                "seed {seed} shape {n}x{m}: incremental {} vs cold {}",
                incremental.total_accuracy,
                cold.total_accuracy
            );
            let stats = incremental.search.expect("search ran").probe_stats;
            assert_eq!(stats.cold_probes, 0, "incremental run must not go cold");
            delta_served += stats.incremental_probes;
            checked += 1;
        }
    }
    assert!(checked >= 24, "property needs >= 24 seeds, got {checked}");
    assert!(
        delta_served > 0,
        "Δ-probe path never used across {checked} instances"
    );
}

/// The batched parallel gate is invisible in the results: for any thread
/// count the profile search returns a byte-identical
/// `ProfileSearchOutcome` (probe counters included), profile, and
/// solution.
#[test]
fn parallel_gate_outcome_is_byte_identical_across_thread_counts() {
    for seed in 0..6u64 {
        let inst = generate(&random_config(30, 5, 0.35, 0.5), 9090 + seed);
        let start = naive_profile(&inst);
        let run = |gate_threads: usize| {
            profile_search(
                &inst,
                &start,
                &ProfileSearchOptions {
                    gate_threads,
                    ..Default::default()
                },
            )
        };
        let (p1, s1, o1) = run(1);
        for threads in [2usize, 8] {
            let (p, s, o) = run(threads);
            assert_eq!(
                o, o1,
                "seed {seed}: outcome diverged at gate_threads={threads}"
            );
            assert_eq!(
                p.caps(),
                p1.caps(),
                "seed {seed}: profile diverged at gate_threads={threads}"
            );
            assert_eq!(
                s.schedule, s1.schedule,
                "seed {seed}: schedule diverged at gate_threads={threads}"
            );
        }
        assert!(o1.probe_stats.probes > 0);
    }
}

/// More sweeps never hurt: the accuracy reached by `profile_search` is
/// non-decreasing in `max_sweeps` (coordinate ascent only applies
/// improving transfers, so each extra sweep starts from the previous
/// optimum).
#[test]
fn profile_search_accuracy_is_monotone_in_sweeps() {
    for seed in 0..8u64 {
        let inst = generate(&random_config(18, 3, 0.3, 0.4), 777 + seed);
        let start = naive_profile(&inst);
        let tol = 1e-9 * inst.total_max_accuracy().max(1.0);
        let mut prev = f64::NEG_INFINITY;
        for max_sweeps in 1..=5 {
            let opts = ProfileSearchOptions {
                max_sweeps,
                ..Default::default()
            };
            let (_, sol, _) = profile_search(&inst, &start, &opts);
            let acc = sol.schedule.total_accuracy(&inst);
            assert!(
                acc >= prev - tol,
                "seed {seed}: accuracy fell from {prev} to {acc} at max_sweeps {max_sweeps}"
            );
            prev = acc;
        }
    }
}

/// The ε-probe gate prunes work but not quality: with gating on, the
/// search issues fewer probes than the exhaustive ablation and still
/// reaches the same accuracy.
#[test]
fn probe_gate_prunes_probes_without_losing_accuracy() {
    for seed in 0..5u64 {
        let inst = generate(&random_config(30, 4, 0.35, 0.5), 4242 + seed);
        let start = naive_profile(&inst);
        let gated = profile_search(&inst, &start, &ProfileSearchOptions::default());
        let exhaustive = profile_search(
            &inst,
            &start,
            &ProfileSearchOptions {
                pairwise_probe: false,
                ..Default::default()
            },
        );
        let acc_gated = gated.1.schedule.total_accuracy(&inst);
        let acc_full = exhaustive.1.schedule.total_accuracy(&inst);
        let scale = acc_full.abs().max(1.0);
        assert!(
            (acc_gated - acc_full).abs() <= 1e-7 * scale,
            "seed {seed}: gated {acc_gated} vs exhaustive {acc_full}"
        );
        assert!(
            gated.2.probe_stats.probes <= exhaustive.2.probe_stats.probes,
            "seed {seed}: gate must not add probes ({:?} vs {:?})",
            gated.2.probe_stats,
            exhaustive.2.probe_stats
        );
    }
}
