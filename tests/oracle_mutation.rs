//! Mutation smoke tests: deliberately broken "solvers" must be flagged
//! by the solution oracle with the *correct* typed violation. A vacuous
//! oracle (one that accepts everything) would silently pass the rest of
//! the suite; these tests prove each seeded defect is caught.

use dsct_core::oracle::{self, Claims, SolutionOracle, Violation};
use dsct_core::schedule::Violation as Feas;
use dsct_core::solver::{FrOptSolver, Solution};
use dsct_core::staged::{StagedApproxSolver, StagedSolution, StagedViolation};
use dsct_workload::{
    generate_staged, DagShape, InstanceConfig, MachineConfig, StagedConfig, TaskConfig,
    ThetaDistribution,
};

fn instance() -> dsct_core::problem::Instance {
    let cfg = InstanceConfig {
        tasks: TaskConfig::paper(8, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
        machines: MachineConfig::paper_random(3),
        rho: 0.4,
        beta: 0.5,
    };
    dsct_workload::generate(&cfg, 7)
}

fn honest_solution(inst: &dsct_core::problem::Instance) -> Solution {
    Solution::from_fr(inst, FrOptSolver::new().solve_typed(inst))
}

fn violations(
    inst: &dsct_core::problem::Instance,
    sol: &Solution,
    claims: &Claims,
) -> Vec<Violation> {
    SolutionOracle::new()
        .verify(inst, sol, claims)
        .expect_err("the mutated solution must be rejected")
}

/// Mutant 1: a solver that "drops the last EDF prefix constraint" —
/// it extends the last task's time on its busiest machine past the
/// final deadline. The oracle must pinpoint `DeadlineExceeded` on that
/// machine (the bogus extra time also breaks agreement, which is fine;
/// the deadline violation is what this mutant seeds).
#[test]
fn dropped_last_edf_prefix_constraint_is_flagged() {
    let inst = instance();
    let mut sol = honest_solution(&inst);
    let last = inst.num_tasks() - 1;
    let busiest = (0..inst.num_machines())
        .max_by(|&a, &b| {
            sol.schedule
                .machine_load(a)
                .total_cmp(&sol.schedule.machine_load(b))
        })
        .expect("non-empty park");
    // Push the machine's completion 10% past the final (largest) deadline.
    let overshoot = inst.d_max() * 1.1 - sol.schedule.machine_load(busiest);
    *sol.schedule.t_mut(last, busiest) += overshoot;

    let vs = violations(
        &inst,
        &sol,
        &Claims::feasible(dsct_core::schedule::ScheduleKind::Fractional),
    );
    assert!(
        vs.iter().any(|v| matches!(
            v,
            Violation::Infeasible(Feas::DeadlineExceeded { machine, .. }) if *machine == busiest
        )),
        "expected DeadlineExceeded on machine {busiest}, got {vs:?}"
    );
}

/// Mutant 2: a solver that overspends the budget by 1% — every
/// processing time inflated by 1.01 on a budget-saturated optimum, with
/// the reported aggregates kept consistent so the *only* defect is the
/// budget overrun. The oracle must flag `BudgetExceeded`.
#[test]
fn one_percent_budget_overspend_is_flagged() {
    let inst = instance();
    // Tighten the budget so the optimum saturates it (β = 0.5 instances
    // always spend the whole budget; recheck to be safe).
    let sol = honest_solution(&inst);
    assert!(
        sol.energy > 0.9 * inst.budget(),
        "test premise: the optimum must (nearly) saturate the budget"
    );
    let mut cheat = sol.clone();
    for j in 0..inst.num_tasks() {
        for r in 0..inst.num_machines() {
            *cheat.schedule.t_mut(j, r) *= 1.01;
        }
    }
    // The cheating solver reports its aggregates truthfully — work,
    // accuracy, and energy all recomputed from the inflated schedule —
    // so agreement holds and only the budget constraint is broken.
    cheat.flops = (0..inst.num_tasks())
        .map(|j| cheat.schedule.flops(j, &inst))
        .collect();
    cheat.total_accuracy = cheat.schedule.total_accuracy(&inst);
    cheat.energy = cheat.schedule.energy(&inst);
    cheat.upper_bound = None;

    let vs = violations(
        &inst,
        &cheat,
        &Claims::feasible(dsct_core::schedule::ScheduleKind::Fractional),
    );
    assert!(
        vs.iter()
            .any(|v| matches!(v, Violation::Infeasible(Feas::BudgetExceeded { .. }))),
        "expected BudgetExceeded, got {vs:?}"
    );
    assert!(
        !vs.iter().any(|v| matches!(
            v,
            Violation::AccuracyMismatch { .. } | Violation::EnergyMismatch { .. }
        )),
        "agreement was kept consistent; only the budget may be flagged: {vs:?}"
    );
}

/// Mutant 3: a solver that inflates its reported accuracy without
/// touching the schedule. Feasibility holds; the oracle must flag the
/// agreement mismatch (and the exceeded self-certified upper bound).
#[test]
fn inflated_reported_accuracy_is_flagged() {
    let inst = instance();
    let mut sol = honest_solution(&inst);
    sol.total_accuracy += 0.05;

    let vs = violations(&inst, &sol, &Claims::fr_optimal());
    assert!(
        vs.iter()
            .any(|v| matches!(v, Violation::AccuracyMismatch { .. })),
        "expected AccuracyMismatch, got {vs:?}"
    );
}

/// Mutant 4: a solver claiming FR-optimality for a visibly improvable
/// schedule (everything scaled to half: half the budget unspent, every
/// marginal still positive). The oracle's KKT stationarity check must
/// fire.
#[test]
fn non_stationary_claimed_optimum_is_flagged() {
    let inst = instance();
    let mut sol = honest_solution(&inst);
    for j in 0..inst.num_tasks() {
        for r in 0..inst.num_machines() {
            *sol.schedule.t_mut(j, r) *= 0.5;
        }
    }
    sol.flops = (0..inst.num_tasks())
        .map(|j| sol.schedule.flops(j, &inst))
        .collect();
    sol.total_accuracy = sol.schedule.total_accuracy(&inst);
    sol.energy = sol.schedule.energy(&inst);
    sol.upper_bound = None;

    let vs = violations(&inst, &sol, &Claims::fr_optimal());
    assert!(
        vs.iter()
            .any(|v| matches!(v, Violation::KktNotStationary { .. })),
        "expected KktNotStationary, got {vs:?}"
    );
}

fn staged_instance() -> dsct_core::staged::StagedInstance {
    let cfg = StagedConfig {
        base: InstanceConfig {
            tasks: TaskConfig::paper(6, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
            machines: MachineConfig::paper_random(2),
            rho: 0.4,
            beta: 0.5,
        },
        shape: DagShape::Chain,
        depth: 3,
        extra_points: 2,
    };
    generate_staged(&cfg, 7).expect("valid staged config")
}

fn staged_violations(
    inst: &dsct_core::staged::StagedInstance,
    sol: &StagedSolution,
) -> Vec<StagedViolation> {
    oracle::verify_staged(inst, sol).expect_err("the mutated staged solution must be rejected")
}

/// Staged mutant A: a solver that violates a precedence edge — it moves
/// a successor stage's start to time zero while its predecessor is still
/// running. The staged oracle must pinpoint `PrecedenceViolated` on that
/// exact (task, stage, pred) triple.
#[test]
fn violated_precedence_edge_is_flagged() {
    let inst = staged_instance();
    let mut sol = StagedApproxSolver::unchecked().solve(&inst).unwrap();
    // Find a chained stage whose predecessor actually runs for a while.
    let (j, v, u) = (0..inst.num_tasks())
        .flat_map(|j| {
            let sched = &sol.schedule;
            inst.task(j)
                .stages
                .iter()
                .enumerate()
                .flat_map(move |(v, s)| s.preds.iter().map(move |&u| (j, v, u)))
                .filter(|&(j, _, u)| sched.placement(j, u).duration > 1e-6)
                .collect::<Vec<_>>()
        })
        .next()
        .expect("a β=0.5 chain instance runs some predecessor stage");
    sol.schedule.placement_mut(j, v).start = 0.0;
    // Keep the reported aggregates truthful so the precedence breach is
    // the seeded defect (moving a start changes no duration, hence no
    // work, accuracy, or energy).
    let vs = staged_violations(&inst, &sol);
    assert!(
        vs.iter().any(|w| matches!(
            w,
            StagedViolation::PrecedenceViolated { task, stage, pred, .. }
                if *task == j && *stage == v && *pred == u
        )),
        "expected PrecedenceViolated on task {j} stage {v} pred {u}, got {vs:?}"
    );
    assert!(
        !vs.iter().any(|w| matches!(
            w,
            StagedViolation::AccuracyMismatch { .. }
                | StagedViolation::EnergyMismatch { .. }
                | StagedViolation::WorkMismatch { .. }
        )),
        "aggregates stayed truthful; only timing may be flagged: {vs:?}"
    );
}

/// Staged mutant B: a solver that runs a stage at an operating point the
/// machine's catalog does not contain (an out-of-range index). The
/// staged oracle must flag `UnknownOperatingPoint` with the offending
/// indices.
#[test]
fn non_catalog_operating_point_is_flagged() {
    let inst = staged_instance();
    let mut sol = StagedApproxSolver::unchecked().solve(&inst).unwrap();
    // Pick a stage that actually runs, so the bogus point also matters.
    let (j, v) = (0..inst.num_tasks())
        .flat_map(|j| (0..inst.task(j).num_stages()).map(move |v| (j, v)))
        .find(|&(j, v)| sol.schedule.placement(j, v).duration > 1e-6)
        .expect("some stage runs");
    let machine = sol.schedule.placement(j, v).machine;
    let bogus = inst.park().get(machine).unwrap().num_points();
    sol.schedule.placement_mut(j, v).point = bogus;
    let vs = staged_violations(&inst, &sol);
    assert!(
        vs.iter().any(|w| matches!(
            w,
            StagedViolation::UnknownOperatingPoint { task, stage, point, .. }
                if *task == j && *stage == v && *point == bogus
        )),
        "expected UnknownOperatingPoint on task {j} stage {v} point {bogus}, got {vs:?}"
    );
}

/// Mutant 5: an "approximation" whose certified fractional upper bound
/// is far above what it achieved — beyond the paper's guarantee `G`.
/// The oracle must flag the broken guarantee.
#[test]
fn broken_approximation_guarantee_is_flagged() {
    // `G = m(a^max − a^min)(1 + ln(θ_max/θ_min))` does not grow with n,
    // so a large generous instance makes the achievable gap dwarf it.
    let cfg = InstanceConfig {
        tasks: TaskConfig::paper(40, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
        machines: MachineConfig::paper_random(2),
        rho: 1.0,
        beta: 1.0,
    };
    let inst = dsct_workload::generate(&cfg, 11);
    let fr = honest_solution(&inst);
    // An integral all-zero schedule achieving only the floor accuracy,
    // yet certifying the true fractional optimum as its upper bound.
    let schedule =
        dsct_core::schedule::FractionalSchedule::zero(inst.num_tasks(), inst.num_machines());
    let total_accuracy = schedule.total_accuracy(&inst);
    let lazy = Solution {
        flops: vec![0.0; inst.num_tasks()],
        assignment: vec![None; inst.num_tasks()],
        integral: true,
        total_accuracy,
        energy: 0.0,
        upper_bound: Some(fr.total_accuracy),
        stats: Default::default(),
        schedule,
    };
    // Only meaningful when the gap actually exceeds G; the β = 0.5,
    // n = 8 instance used here has a gap well above it.
    let vs = violations(&inst, &lazy, &Claims::approx());
    assert!(
        vs.iter()
            .any(|v| matches!(v, Violation::GuaranteeViolated { .. })),
        "expected GuaranteeViolated, got {vs:?}"
    );
}
