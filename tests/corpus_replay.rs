//! Regression-corpus replay: every JSON under `tests/corpus/` is loaded
//! through the handrolled schema (`support::instance_from_json`, the
//! counterpart of [`dsct_core::oracle::instance_to_json`]), solved by
//! every solver family, and re-verified by the solution oracle.
//!
//! The corpus holds hand-minimized edge cases plus any instance the
//! oracle ever dumped on a violation (`dsct_core::oracle::dump_instance`
//! writes the same schema): copying a dump into this directory turns a
//! one-off failure into a permanent regression test.

mod support;

use dsct_core::oracle::{self, Claims};
use dsct_core::schedule::ScheduleKind;
use dsct_core::solver::{ApproxSolver, EdfSolver, FrOptSolver, Solution};
use dsct_core::staged::StagedApproxSolver;

fn corpus_files_in(subdir: &str) -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(subdir);
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension().and_then(|e| e.to_str()) == Some("json")).then_some(path)
        })
        .collect();
    files.sort();
    files
}

fn corpus_files() -> Vec<std::path::PathBuf> {
    corpus_files_in("tests/corpus")
}

#[test]
fn every_corpus_instance_round_trips_and_passes_the_oracle() {
    let files = corpus_files();
    assert!(
        files.len() >= 3,
        "the seeded corpus must hold at least the 3 hand-minimized edge cases"
    );
    for path in files {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let label = support::corpus_label(&text);
        let inst = support::instance_from_json(&text)
            .unwrap_or_else(|e| panic!("{} ({label}): {e}", path.display()));

        // The schema must round-trip: serializing the parsed instance
        // and parsing it again yields the same instance ({:?} floats
        // are exact).
        let rewritten = oracle::instance_to_json(&inst, &label);
        let reparsed = support::instance_from_json(&rewritten)
            .unwrap_or_else(|e| panic!("{} ({label}): reparse failed: {e}", path.display()));
        assert_eq!(
            inst,
            reparsed,
            "{}: JSON round-trip drifted",
            path.display()
        );

        // Every solver family must survive the edge case and satisfy
        // its own claims.
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let fr = Solution::from_fr(&inst, FrOptSolver::new().solve_typed(&inst));
        oracle::enforce(
            &inst,
            &fr,
            &Claims::fr_optimal(),
            &format!("corpus/{name}/fr-opt"),
        );
        let approx = Solution::from_approx(&inst, ApproxSolver::new().solve_typed(&inst));
        oracle::enforce(
            &inst,
            &approx,
            &Claims::approx(),
            &format!("corpus/{name}/approx"),
        );
        for (solver, tag) in [
            (EdfSolver::no_compression(), "edf-nc"),
            (EdfSolver::three_levels(), "edf-3l"),
        ] {
            let sol = Solution::from_baseline(&inst, solver.solve_typed(&inst));
            oracle::enforce(
                &inst,
                &sol,
                &Claims::feasible(ScheduleKind::Integral),
                &format!("corpus/{name}/{tag}"),
            );
        }
    }
}

#[test]
fn every_staged_corpus_instance_round_trips_and_passes_every_solver_family() {
    let files = corpus_files_in("tests/corpus/staged");
    assert!(
        files.len() >= 4,
        "the staged corpus must hold at least the 4 hand-minimized DAG/DVFS cases"
    );
    for path in files {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let label = support::corpus_label(&text);
        let inst = support::staged_instance_from_json(&text)
            .unwrap_or_else(|e| panic!("{} ({label}): {e}", path.display()));

        // The staged schema must round-trip bit-exactly.
        let rewritten = oracle::staged_instance_to_json(&inst, &label);
        let reparsed = support::staged_instance_from_json(&rewritten)
            .unwrap_or_else(|e| panic!("{} ({label}): reparse failed: {e}", path.display()));
        assert_eq!(
            inst,
            reparsed,
            "{}: staged JSON round-trip drifted",
            path.display()
        );

        let name = path.file_name().unwrap().to_string_lossy().into_owned();

        // The staged solver must survive the edge case; `checked()`
        // enforces the full staged oracle on the way out, and we
        // re-verify explicitly for a corpus-labelled report.
        let staged_sol = StagedApproxSolver::checked()
            .solve(&inst)
            .unwrap_or_else(|e| panic!("{name} ({label}): staged solve failed: {e}"));
        oracle::enforce_staged(&inst, &staged_sol, &format!("corpus/staged/{name}/approx"));

        // Every flat solver family must survive the lowered instance too
        // (the staged corpus doubles as a flat edge-case corpus).
        let lowered = inst
            .lowered()
            .unwrap_or_else(|e| panic!("{name} ({label}): lowering failed: {e}"));
        let fr = Solution::from_fr(&lowered, FrOptSolver::new().solve_typed(&lowered));
        oracle::enforce(
            &lowered,
            &fr,
            &Claims::fr_optimal(),
            &format!("corpus/staged/{name}/fr-opt"),
        );
        let approx = Solution::from_approx(&lowered, ApproxSolver::new().solve_typed(&lowered));
        oracle::enforce(
            &lowered,
            &approx,
            &Claims::approx(),
            &format!("corpus/staged/{name}/approx-lowered"),
        );
        for (solver, tag) in [
            (EdfSolver::no_compression(), "edf-nc"),
            (EdfSolver::three_levels(), "edf-3l"),
        ] {
            let sol = Solution::from_baseline(&lowered, solver.solve_typed(&lowered));
            oracle::enforce(
                &lowered,
                &sol,
                &Claims::feasible(ScheduleKind::Integral),
                &format!("corpus/staged/{name}/{tag}"),
            );
        }

        // The staged solution can never beat the lowered fractional
        // optimum (selected-point upper bound).
        assert!(
            staged_sol.total_accuracy <= fr.total_accuracy + 1e-9,
            "{name} ({label}): staged {} beats FR-OPT {}",
            staged_sol.total_accuracy,
            fr.total_accuracy
        );
    }
}

#[test]
fn zero_slack_precedence_corpus_instance_fills_its_deadline_exactly() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus/staged/zero-slack-precedence.json");
    let inst =
        support::staged_instance_from_json(&std::fs::read_to_string(path).expect("seeded file"))
            .expect("valid corpus file");
    let sol = StagedApproxSolver::checked().solve(&inst).unwrap();
    // The budget is generous and the deadline exactly fits both stages
    // at full work: the solver must use the whole window and reach the
    // maximum accuracy, with zero slack between the chained stages.
    let task = inst.task(0);
    let p0 = sol.schedule.placement(0, 0);
    let p1 = sol.schedule.placement(0, 1);
    assert!((p0.finish() - p1.start).abs() < 1e-9, "stages must abut");
    assert!(
        (p1.finish() - task.deadline).abs() < 1e-9,
        "finish {} must hit the deadline {}",
        p1.finish(),
        task.deadline
    );
    assert!(
        (sol.total_accuracy - 0.8).abs() < 1e-9,
        "full work reaches a_max, got {}",
        sol.total_accuracy
    );
}

#[test]
fn zero_budget_corpus_instance_forces_floor_accuracy() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/zero-budget.json");
    let inst = support::instance_from_json(&std::fs::read_to_string(path).expect("seeded file"))
        .expect("valid corpus file");
    let fr = FrOptSolver::new().solve_typed(&inst);
    assert!(fr.energy.abs() < 1e-12, "no budget, no joules");
    assert!(
        (fr.total_accuracy - inst.total_min_accuracy()).abs() < 1e-9,
        "zero budget must pin every task at its floor accuracy"
    );
}
