//! Property tests for the [`Solution`] conversions: for every wrapped
//! solver, the uniform [`Solution`] returned through the [`Solver`] trait
//! must preserve the typed solution's accuracy and energy to 1e-12, and
//! its derived fields (assignment, flops, upper bound) must be consistent
//! with the underlying schedule.

use dsct_core::solver::{
    ApproxSolver, EdfSolver, FrOptSolver, LpSolver, MipSolver, Solution, Solver,
};
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use proptest::prelude::*;

const TOL: f64 = 1e-12;

fn arb_config() -> impl Strategy<Value = InstanceConfig> {
    (
        2usize..10,
        1usize..4,
        0.1f64..2.0,
        prop_oneof![Just(0.05), Just(0.2), Just(0.5)],
        0.1f64..0.9,
    )
        .prop_map(|(n, m, theta_max, rho, beta)| InstanceConfig {
            tasks: TaskConfig::paper(
                n,
                ThetaDistribution::Uniform {
                    min: 0.1,
                    max: 0.1 + theta_max,
                },
            ),
            machines: MachineConfig::paper_random(m),
            rho,
            beta,
        })
}

fn check_consistency(inst: &dsct_core::problem::Instance, sol: &Solution) {
    assert_eq!(sol.flops.len(), inst.num_tasks());
    assert_eq!(sol.assignment.len(), inst.num_tasks());
    for j in 0..inst.num_tasks() {
        assert!((sol.flops[j] - sol.schedule.flops(j, inst)).abs() <= TOL.max(1e-9 * sol.flops[j]));
    }
    assert!((sol.energy - sol.schedule.energy(inst)).abs() <= 1e-9);
    if let Some(ub) = sol.upper_bound {
        assert!(
            sol.total_accuracy <= ub + 1e-6,
            "solution {} above its own certified bound {ub}",
            sol.total_accuracy
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FR-OPT: trait-object path == typed path, exactly.
    #[test]
    fn fr_opt_conversion_preserves_objective(cfg in arb_config(), seed in 0u64..1_000) {
        let inst = generate(&cfg, seed);
        let typed = FrOptSolver::new().solve_typed(&inst);
        let sol = FrOptSolver::new().solve(&inst).expect("infallible");
        prop_assert!((sol.total_accuracy - typed.total_accuracy).abs() <= TOL);
        prop_assert!((sol.energy - typed.energy).abs() <= TOL);
        prop_assert_eq!(sol.upper_bound, Some(typed.total_accuracy));
        prop_assert!(!sol.integral);
        check_consistency(&inst, &sol);
    }

    /// APPROX: integral accuracy and the embedded fractional UB survive.
    #[test]
    fn approx_conversion_preserves_objective(cfg in arb_config(), seed in 0u64..1_000) {
        let inst = generate(&cfg, seed);
        let typed = ApproxSolver::new().solve_typed(&inst);
        let sol = ApproxSolver::new().solve(&inst).expect("infallible");
        prop_assert!((sol.total_accuracy - typed.total_accuracy).abs() <= TOL);
        prop_assert!((sol.energy - typed.schedule.energy(&inst)).abs() <= TOL);
        prop_assert_eq!(sol.upper_bound, Some(typed.fractional.total_accuracy));
        prop_assert_eq!(&sol.assignment, &typed.assignment);
        prop_assert!(sol.integral);
        check_consistency(&inst, &sol);
    }

    /// Both EDF baselines; no certified bound.
    #[test]
    fn edf_conversions_preserve_objective(cfg in arb_config(), seed in 0u64..1_000) {
        let inst = generate(&cfg, seed);
        for solver in [EdfSolver::no_compression(), EdfSolver::three_levels()] {
            let typed = solver.solve_typed(&inst);
            let sol = solver.solve(&inst).expect("infallible");
            prop_assert!((sol.total_accuracy - typed.total_accuracy).abs() <= TOL);
            prop_assert!((sol.energy - typed.energy).abs() <= TOL);
            prop_assert_eq!(sol.upper_bound, None);
            prop_assert_eq!(&sol.assignment, &typed.assignment);
            check_consistency(&inst, &sol);
        }
    }

    /// LP relaxation: objective and simplex iteration count survive.
    #[test]
    fn lp_conversion_preserves_objective(cfg in arb_config(), seed in 0u64..1_000) {
        let inst = generate(&cfg, seed);
        let typed = LpSolver::new().solve_typed(&inst).expect("model builds");
        let sol = LpSolver::new().solve(&inst).expect("optimal on these sizes");
        prop_assert!((sol.total_accuracy - typed.total_accuracy).abs() <= TOL);
        prop_assert_eq!(sol.stats.lp_iterations, typed.iterations);
        prop_assert_eq!(sol.upper_bound, Some(typed.total_accuracy));
        check_consistency(&inst, &sol);
    }
}

/// MIP on fixed tiny instances (branch & bound is exponential — keep the
/// property cheap and deterministic).
#[test]
fn mip_conversion_preserves_objective() {
    for seed in 0..6u64 {
        let cfg = InstanceConfig {
            tasks: TaskConfig::paper(4, ThetaDistribution::Uniform { min: 0.2, max: 2.0 }),
            machines: MachineConfig::paper_random(2),
            rho: 0.3,
            beta: 0.4,
        };
        let inst = generate(&cfg, seed);
        let typed = MipSolver::new().solve_typed(&inst).expect("model builds");
        let sol = MipSolver::new().solve(&inst).expect("incumbent found");
        assert!((sol.total_accuracy - typed.total_accuracy).abs() <= TOL);
        assert_eq!(sol.stats.nodes, typed.nodes);
        assert_eq!(sol.stats.best_bound, Some(typed.best_bound));
        assert_eq!(sol.upper_bound, Some(typed.best_bound));
        assert!(sol.integral);
        let schedule = typed.schedule.expect("incumbent");
        assert!((sol.energy - schedule.energy(&inst)).abs() <= TOL);
        check_consistency(&inst, &sol);
    }
}
