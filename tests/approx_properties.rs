//! Randomized properties of the approximation algorithm and baselines
//! across operating regimes: feasibility, bound ordering, and the paper's
//! Eq. 13 guarantee.

use dsct_core::guarantee::absolute_guarantee;
use dsct_core::schedule::ScheduleKind;
use dsct_core::solver::{ApproxSolver, EdfSolver, FrOptSolver};
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use proptest::prelude::*;

fn arb_theta() -> impl Strategy<Value = ThetaDistribution> {
    prop_oneof![
        (0.1f64..4.9).prop_map(ThetaDistribution::Fixed),
        (0.1f64..1.0, 1.0f64..4.9).prop_map(|(min, max)| ThetaDistribution::Uniform { min, max }),
        Just(ThetaDistribution::EarlySplit {
            fraction: 0.3,
            early: (4.0, 4.9),
            late: (0.1, 1.0),
        }),
    ]
}

fn arb_config() -> impl Strategy<Value = InstanceConfig> {
    (
        2usize..24,
        1usize..5,
        arb_theta(),
        prop_oneof![Just(0.01), Just(0.1), Just(0.35), Just(1.0)],
        0.05f64..1.0,
    )
        .prop_map(|(n, m, theta, rho, beta)| InstanceConfig {
            tasks: TaskConfig::paper(n, theta),
            machines: MachineConfig::paper_random(m),
            rho,
            beta,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The approximation always yields a feasible integral schedule whose
    /// accuracy sits between the task floor and the fractional bound, and
    /// the Eq. 13 guarantee `UB − SOL ≤ G` holds.
    #[test]
    fn approx_is_feasible_bounded_and_guaranteed(cfg in arb_config(), seed in 0u64..1_000) {
        let inst = generate(&cfg, seed);
        let sol = ApproxSolver::new().solve_typed(&inst);
        prop_assert!(sol.schedule.validate(&inst, ScheduleKind::Integral).is_ok(),
            "{:?}", sol.schedule.validate(&inst, ScheduleKind::Integral).unwrap_err());
        let ub = sol.fractional.total_accuracy;
        prop_assert!(sol.total_accuracy <= ub + 1e-7);
        prop_assert!(sol.total_accuracy >= inst.total_min_accuracy() - 1e-9);
        let g = absolute_guarantee(&inst);
        prop_assert!(ub - sol.total_accuracy <= g + 1e-7,
            "guarantee violated: gap {} > G {}", ub - sol.total_accuracy, g);
    }

    /// Both EDF baselines produce feasible integral schedules and never
    /// beat the fractional upper bound.
    #[test]
    fn baselines_are_feasible_and_dominated(cfg in arb_config(), seed in 0u64..1_000) {
        let inst = generate(&cfg, seed);
        let ub = ApproxSolver::new().solve_typed(&inst).fractional.total_accuracy;
        for sol in [
            EdfSolver::no_compression().solve_typed(&inst),
            EdfSolver::three_levels().solve_typed(&inst),
        ] {
            prop_assert!(sol.schedule.validate(&inst, ScheduleKind::Integral).is_ok());
            prop_assert!(sol.total_accuracy <= ub + 1e-6,
                "baseline {} above UB {}", sol.total_accuracy, ub);
            prop_assert!(sol.energy <= inst.budget() + 1e-6);
        }
    }

    /// The fractional optimum is monotone in the energy budget.
    #[test]
    fn fractional_optimum_monotone_in_budget(cfg in arb_config(), seed in 0u64..500) {
        let inst = generate(&cfg, seed);
        let lo = inst.with_budget(inst.budget() * 0.5).expect("valid");
        let fr_lo = FrOptSolver::new().solve_typed(&lo);
        let fr_hi = FrOptSolver::new().solve_typed(&inst);
        prop_assert!(fr_hi.total_accuracy >= fr_lo.total_accuracy - 1e-7,
            "budget {} gives {}, budget {} gives {}",
            lo.budget(), fr_lo.total_accuracy, inst.budget(), fr_hi.total_accuracy);
    }

    /// The fractional optimum is monotone in the deadline tolerance ρ.
    #[test]
    fn fractional_optimum_monotone_in_rho(
        n in 3usize..15,
        m in 1usize..4,
        seed in 0u64..500,
    ) {
        let mk = |rho: f64| InstanceConfig {
            tasks: TaskConfig::paper(n, ThetaDistribution::Fixed(0.5)),
            machines: MachineConfig::paper_random(m),
            rho,
            beta: 0.5,
        };
        // Same seed ⇒ same machines and θs; only the horizon scales.
        let tight = generate(&mk(0.05), seed);
        let loose = generate(&mk(0.5), seed);
        let fr_tight = FrOptSolver::new().solve_typed(&tight);
        let fr_loose = FrOptSolver::new().solve_typed(&loose);
        prop_assert!(fr_loose.total_accuracy >= fr_tight.total_accuracy - 1e-7);
    }
}
