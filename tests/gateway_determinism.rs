//! The gateway determinism contract, as CI runs it: gateway replays
//! must produce byte-identical report digests across producer counts
//! {1, 4} × worker counts {1, 2, 8}, for every seed under test — with
//! and without a kill→recover chaos scenario — and the quota/rebalance
//! subsystems must surface as typed, digest-stable records rather than
//! counters. The `determinism` CI job runs this binary twice
//! (`--test-threads=1` and the harness default), so harness threading
//! is covered by the job matrix.
//!
//! Tests build in debug, so `OnlineConfig::check_invariants` defaults
//! to on and every per-shard residual solution passes the solution
//! oracle on the way through.

use dsct_ea::chaos::ShardChaosPlan;
use dsct_ea::gateway::{
    replay_gateway, Gateway, GatewayConfig, GatewayError, QuotaConfig, RebalanceConfig,
    RETRY_ID_BASE,
};
use dsct_ea::online::ReplayConfig;
use dsct_ea::server::ServerConfig;
use dsct_ea::workload::{
    generate_arrivals, ArrivalConfig, ArrivalTrace, MachineConfig, TaskConfig, ThetaDistribution,
};

const PRODUCER_COUNTS: [usize; 2] = [1, 4];
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const SEEDS: [u64; 3] = [11, 22, 33];
const SHARDS: usize = 4;

fn trace(seed: u64) -> ArrivalTrace {
    let cfg = ArrivalConfig {
        tasks: TaskConfig::paper(32, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
        machines: MachineConfig::paper_random(8),
        load: 1.0,
        deadline_slack: 2.0,
        beta: 0.5,
    };
    generate_arrivals(&cfg, seed)
        .expect("validated config")
        .with_tenants(16, seed)
}

/// A trace with deliberate tenant skew: half the tasks belong to one
/// tenant, so one shard's pending pool runs hot and the rebalancer has
/// real work to do.
fn skewed_trace(seed: u64) -> ArrivalTrace {
    let mut trace = trace(seed);
    for task in trace.tasks.iter_mut().filter(|t| t.id % 2 == 0) {
        task.tenant = 1;
    }
    trace
}

fn gateway_config(workers: usize) -> GatewayConfig {
    GatewayConfig {
        server: ServerConfig {
            replay: ReplayConfig {
                shards: SHARDS,
                workers,
                ..ReplayConfig::default()
            },
            ..ServerConfig::default()
        },
        // The paper traces are dense: all arrivals land within ~0.01
        // time-units and per-task f_max runs ~2.5–35 GFLOP. A burst of
        // 40 admits a tenant's first task or two; a 5000 GFLOP/s refill
        // lets a handful of flush-boundary retries pass later.
        queue_capacity: 8,
        quota: QuotaConfig {
            enabled: true,
            rate: 5000.0,
            burst: 40.0,
            retry: true,
        },
        rebalance: RebalanceConfig {
            enabled: true,
            enter_ratio: 1.5,
            exit_ratio: 1.0,
            min_pending: 3,
            max_moves_per_flush: 2,
        },
    }
}

fn kill_recover_plan(seed: u64, trace: &ArrivalTrace) -> ShardChaosPlan {
    ShardChaosPlan::kill_recover(seed, trace.horizon(), SHARDS, 1, trace.horizon() * 0.2)
}

/// The headline matrix: digests byte-identical across producer and
/// worker counts, per seed, with and without kill→recover chaos.
#[test]
fn digest_identical_across_producers_and_workers() {
    for seed in SEEDS {
        let trace = trace(seed);
        for (label, plan) in [
            ("no chaos", ShardChaosPlan::none(seed)),
            ("kill->recover", kill_recover_plan(seed, &trace)),
        ] {
            let mut reference: Option<String> = None;
            for producers in PRODUCER_COUNTS {
                for workers in WORKER_COUNTS {
                    let report = replay_gateway(&trace, &gateway_config(workers), &plan, producers)
                        .expect("gateway replay");
                    let digest = report.digest();
                    match &reference {
                        None => reference = Some(digest),
                        Some(expected) => assert_eq!(
                            expected, &digest,
                            "seed {seed} [{label}]: digest diverged at \
                             producers={producers}, workers={workers}"
                        ),
                    }
                }
            }
        }
    }
}

/// Quota rejections and rebalance moves must appear as typed records in
/// the digest-stable core, not just counters — and stay byte-identical
/// across the matrix while doing so.
#[test]
fn quota_and_rebalance_records_are_typed_and_digest_stable() {
    let trace = skewed_trace(SEEDS[1]);
    let plan = ShardChaosPlan::none(SEEDS[1]);
    let reference = replay_gateway(&trace, &gateway_config(1), &plan, 1).expect("replay");
    assert!(
        !reference.core.rejections.is_empty(),
        "the skewed trace must trip the quota gate"
    );
    assert!(
        !reference.core.server.moves.is_empty(),
        "the skewed trace must trigger rebalance moves"
    );
    assert!(
        !reference.core.audits.is_empty(),
        "per-flush fairness audits must be on record"
    );
    // Typed content: rejections carry the over-quota tenant and the
    // token shortfall; moves carry tenant and both shards.
    for r in &reference.core.rejections {
        assert!(r.needed > r.available);
        assert!(r.needed.is_finite());
    }
    for m in &reference.core.server.moves {
        assert_ne!(m.from, m.to);
    }
    // The records are part of the digest: scrubbing them must change it.
    let digest = reference.digest();
    assert!(digest.contains("\"rejections\""));
    assert!(digest.contains("\"moves\""));
    assert!(digest.contains("\"audits\""));
    let mut scrubbed = reference.clone();
    scrubbed.core.rejections.clear();
    assert_ne!(digest, scrubbed.digest());
    // And stable across the full matrix.
    for producers in PRODUCER_COUNTS {
        for workers in WORKER_COUNTS {
            let report =
                replay_gateway(&trace, &gateway_config(workers), &plan, producers).expect("replay");
            assert_eq!(digest, report.digest());
        }
    }
}

/// Retries draw ids from the documented reserved range and admit on a
/// later flush once the bucket refills.
#[test]
fn quota_retries_use_the_reserved_id_range() {
    let trace = skewed_trace(SEEDS[0]);
    let plan = ShardChaosPlan::none(SEEDS[0]);
    let report = replay_gateway(&trace, &gateway_config(1), &plan, 1).expect("replay");
    let summary = report.core.summary;
    assert!(summary.retries_enqueued > 0, "skew must force retries");
    assert!(
        summary.retries_admitted > 0,
        "the refill rate must let some retries through"
    );
    assert_eq!(
        summary.retries_enqueued,
        report
            .core
            .rejections
            .iter()
            .filter(|r| r.retry_id.is_some())
            .count()
    );
    for r in &report.core.rejections {
        if let Some(id) = r.retry_id {
            assert!(id >= RETRY_ID_BASE, "retry id {id} below RETRY_ID_BASE");
        }
        assert!(r.task < RETRY_ID_BASE, "original ids stay out of the range");
    }
    assert_eq!(
        summary.retries_enqueued,
        summary.retries_admitted + summary.retries_dropped
    );
    // Admitted retries show up in the server's decision log under their
    // synthesized ids.
    let retry_decisions = report
        .core
        .server
        .decisions
        .iter()
        .filter(|(id, _, _)| *id >= RETRY_ID_BASE)
        .count();
    assert_eq!(retry_decisions, summary.retries_admitted);
}

/// The id-range guard: producer ids in a reserved synthesized range and
/// duplicate ids are typed errors, never silent double-accounting.
#[test]
fn reserved_and_duplicate_ids_are_typed_errors() {
    let trace = trace(SEEDS[2]);
    let mut gateway = Gateway::new(&trace.park, trace.budget, gateway_config(1)).expect("gateway");
    let mut task = trace.tasks[0].clone();
    gateway.admit(&task).expect("fresh id admits");
    assert_eq!(
        gateway.admit(&task),
        Err(GatewayError::DuplicateId { id: task.id })
    );
    task.id = dsct_ea::chaos::BURST_ID_BASE;
    assert_eq!(
        gateway.admit(&task),
        Err(GatewayError::ReservedId {
            id: dsct_ea::chaos::BURST_ID_BASE,
            base: dsct_ea::chaos::BURST_ID_BASE,
        })
    );
    task.id = RETRY_ID_BASE + 7;
    task.arrival += 1.0;
    assert_eq!(
        gateway.admit(&task),
        Err(GatewayError::ReservedId {
            id: RETRY_ID_BASE + 7,
            base: dsct_ea::chaos::BURST_ID_BASE,
        })
    );
}
