//! Cross-solver agreement on tiny instances: the branch-and-bound MIP must
//! match brute-force enumeration over all machine assignments (with the
//! per-assignment time allocation solved as an LP), and the whole solver
//! chain must respect `EDF ≤ APPROX ≤ MIP ≤ UB`.

use dsct_core::lp_model::build_fr_lp;
use dsct_core::problem::Instance;
use dsct_core::schedule::ScheduleKind;
use dsct_core::solver::{ApproxSolver, MipSolver};
use dsct_lp::SolveOptions;
use dsct_mip::MipStatus;
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};

/// Optimal total accuracy for one fixed task→machine assignment: the FR LP
/// with every t_jr of a non-chosen machine pinned to zero.
fn assignment_optimum(inst: &Instance, assignment: &[usize]) -> f64 {
    let m = inst.num_machines();
    let mut built = build_fr_lp(inst);
    for (j, &r_chosen) in assignment.iter().enumerate() {
        for r in 0..m {
            if r != r_chosen {
                built.model.set_bounds(built.t_vars[j * m + r], 0.0, 0.0);
            }
        }
    }
    let sol = built
        .model
        .solve(&SolveOptions::default())
        .expect("valid LP");
    assert_eq!(sol.status, dsct_lp::Status::Optimal);
    sol.objective
}

/// Brute force over all m^n assignments.
fn brute_force_optimum(inst: &Instance) -> f64 {
    let n = inst.num_tasks();
    let m = inst.num_machines();
    let mut best = f64::NEG_INFINITY;
    let mut assignment = vec![0usize; n];
    loop {
        best = best.max(assignment_optimum(inst, &assignment));
        // Increment the mixed-radix counter.
        let mut k = 0;
        loop {
            if k == n {
                return best;
            }
            assignment[k] += 1;
            if assignment[k] < m {
                break;
            }
            assignment[k] = 0;
            k += 1;
        }
    }
}

fn tiny_instance(seed: u64, n: usize, m: usize, beta: f64, rho: f64) -> Instance {
    let cfg = InstanceConfig {
        tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.2, max: 3.0 }),
        machines: MachineConfig::paper_random(m),
        rho,
        beta,
    };
    generate(&cfg, seed)
}

#[test]
fn mip_matches_brute_force_enumeration() {
    for seed in 0..8 {
        let inst = tiny_instance(seed, 4, 2, 0.4, 0.3);
        let brute = brute_force_optimum(&inst);
        let mip = MipSolver::new().solve_typed(&inst).expect("builds");
        assert_eq!(mip.status, MipStatus::Optimal, "seed {seed}");
        assert!(
            (mip.total_accuracy - brute).abs() < 1e-5,
            "seed {seed}: MIP {} vs brute force {}",
            mip.total_accuracy,
            brute
        );
    }
}

#[test]
fn mip_matches_brute_force_three_machines() {
    for seed in 0..4 {
        let inst = tiny_instance(seed, 3, 3, 0.5, 0.2);
        let brute = brute_force_optimum(&inst);
        let mip = MipSolver::new().solve_typed(&inst).expect("builds");
        assert_eq!(mip.status, MipStatus::Optimal, "seed {seed}");
        assert!(
            (mip.total_accuracy - brute).abs() < 1e-5,
            "seed {seed}: MIP {} vs brute force {}",
            mip.total_accuracy,
            brute
        );
    }
}

#[test]
fn solver_chain_ordering_holds() {
    for seed in 0..10 {
        let inst = tiny_instance(seed, 6, 2, 0.5, 0.35);
        let approx = ApproxSolver::new().solve_typed(&inst);
        let mip = MipSolver::new().solve_typed(&inst).expect("builds");
        assert_eq!(mip.status, MipStatus::Optimal, "seed {seed}");
        let ub = approx.fractional.total_accuracy;
        assert!(
            approx.total_accuracy <= mip.total_accuracy + 1e-6,
            "seed {seed}: APPROX {} above MIP optimum {}",
            approx.total_accuracy,
            mip.total_accuracy
        );
        assert!(
            mip.total_accuracy <= ub + 1e-6,
            "seed {seed}: MIP {} above UB {}",
            mip.total_accuracy,
            ub
        );
        let schedule = mip.schedule.expect("incumbent");
        schedule
            .validate(&inst, ScheduleKind::Integral)
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
    }
}

#[test]
fn single_machine_chain_collapses() {
    // With one machine the relaxation is integral: UB = MIP = APPROX.
    for seed in 0..6 {
        let inst = tiny_instance(seed, 5, 1, 0.6, 0.4);
        let approx = ApproxSolver::new().solve_typed(&inst);
        let mip = MipSolver::new().solve_typed(&inst).expect("builds");
        let ub = approx.fractional.total_accuracy;
        assert!(
            (approx.total_accuracy - ub).abs() < 1e-6,
            "seed {seed}: APPROX {} vs UB {}",
            approx.total_accuracy,
            ub
        );
        assert!(
            (mip.total_accuracy - ub).abs() < 1e-5,
            "seed {seed}: MIP {} vs UB {}",
            mip.total_accuracy,
            ub
        );
    }
}
