//! Cross-solver agreement on tiny instances: the branch-and-bound MIP must
//! match brute-force enumeration over all machine assignments (with the
//! per-assignment time allocation solved as an LP), and the whole solver
//! chain must respect `EDF ≤ APPROX ≤ MIP ≤ UB`.

use dsct_core::lp_model::build_fr_lp;
use dsct_core::problem::Instance;
use dsct_core::schedule::ScheduleKind;
use dsct_core::solver::{ApproxSolver, MipSolver};
use dsct_lp::SolveOptions;
use dsct_mip::MipStatus;
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};

/// Optimal total accuracy for one fixed task→machine assignment: the FR LP
/// with every t_jr of a non-chosen machine pinned to zero.
fn assignment_optimum(inst: &Instance, assignment: &[usize]) -> f64 {
    let m = inst.num_machines();
    let mut built = build_fr_lp(inst);
    for (j, &r_chosen) in assignment.iter().enumerate() {
        for r in 0..m {
            if r != r_chosen {
                built.model.set_bounds(built.t_vars[j * m + r], 0.0, 0.0);
            }
        }
    }
    let sol = built
        .model
        .solve(&SolveOptions::default())
        .expect("valid LP");
    assert_eq!(sol.status, dsct_lp::Status::Optimal);
    sol.objective
}

/// Brute force over all m^n assignments.
fn brute_force_optimum(inst: &Instance) -> f64 {
    let n = inst.num_tasks();
    let m = inst.num_machines();
    let mut best = f64::NEG_INFINITY;
    let mut assignment = vec![0usize; n];
    loop {
        best = best.max(assignment_optimum(inst, &assignment));
        // Increment the mixed-radix counter.
        let mut k = 0;
        loop {
            if k == n {
                return best;
            }
            assignment[k] += 1;
            if assignment[k] < m {
                break;
            }
            assignment[k] = 0;
            k += 1;
        }
    }
}

fn tiny_instance(seed: u64, n: usize, m: usize, beta: f64, rho: f64) -> Instance {
    let cfg = InstanceConfig {
        tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.2, max: 3.0 }),
        machines: MachineConfig::paper_random(m),
        rho,
        beta,
    };
    generate(&cfg, seed)
}

#[test]
fn mip_matches_brute_force_enumeration() {
    for seed in 0..8 {
        let inst = tiny_instance(seed, 4, 2, 0.4, 0.3);
        let brute = brute_force_optimum(&inst);
        let mip = MipSolver::new().solve_typed(&inst).expect("builds");
        assert_eq!(mip.status, MipStatus::Optimal, "seed {seed}");
        assert!(
            (mip.total_accuracy - brute).abs() < 1e-5,
            "seed {seed}: MIP {} vs brute force {}",
            mip.total_accuracy,
            brute
        );
    }
}

#[test]
fn mip_matches_brute_force_three_machines() {
    for seed in 0..4 {
        let inst = tiny_instance(seed, 3, 3, 0.5, 0.2);
        let brute = brute_force_optimum(&inst);
        let mip = MipSolver::new().solve_typed(&inst).expect("builds");
        assert_eq!(mip.status, MipStatus::Optimal, "seed {seed}");
        assert!(
            (mip.total_accuracy - brute).abs() < 1e-5,
            "seed {seed}: MIP {} vs brute force {}",
            mip.total_accuracy,
            brute
        );
    }
}

#[test]
fn solver_chain_ordering_holds() {
    for seed in 0..10 {
        let inst = tiny_instance(seed, 6, 2, 0.5, 0.35);
        let approx = ApproxSolver::new().solve_typed(&inst);
        let mip = MipSolver::new().solve_typed(&inst).expect("builds");
        assert_eq!(mip.status, MipStatus::Optimal, "seed {seed}");
        let ub = approx.fractional.total_accuracy;
        assert!(
            approx.total_accuracy <= mip.total_accuracy + 1e-6,
            "seed {seed}: APPROX {} above MIP optimum {}",
            approx.total_accuracy,
            mip.total_accuracy
        );
        assert!(
            mip.total_accuracy <= ub + 1e-6,
            "seed {seed}: MIP {} above UB {}",
            mip.total_accuracy,
            ub
        );
        let schedule = mip.schedule.expect("incumbent");
        schedule
            .validate(&inst, ScheduleKind::Integral)
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
    }
}

#[test]
fn single_machine_chain_collapses() {
    // With one machine the relaxation is integral: UB = MIP = APPROX.
    for seed in 0..6 {
        let inst = tiny_instance(seed, 5, 1, 0.6, 0.4);
        let approx = ApproxSolver::new().solve_typed(&inst);
        let mip = MipSolver::new().solve_typed(&inst).expect("builds");
        let ub = approx.fractional.total_accuracy;
        assert!(
            (approx.total_accuracy - ub).abs() < 1e-6,
            "seed {seed}: APPROX {} vs UB {}",
            approx.total_accuracy,
            ub
        );
        assert!(
            (mip.total_accuracy - ub).abs() < 1e-5,
            "seed {seed}: MIP {} vs UB {}",
            mip.total_accuracy,
            ub
        );
    }
}

/// The deprecated free functions must stay byte-for-byte equivalent to the
/// [`Solver`](dsct_core::solver::Solver) implementations wrapping them —
/// this is the migration-safety diff for downstream code still on the old
/// API.
#[test]
#[allow(deprecated)]
fn deprecated_free_functions_match_solver_impls() {
    use dsct_core::approx::{solve_approx, ApproxOptions};
    use dsct_core::baselines::{edf_no_compression, edf_three_levels};
    use dsct_core::fr_opt::{solve_fr_opt, FrOptOptions};
    use dsct_core::mip_model::solve_mip_exact;
    use dsct_core::solver::{EdfSolver, FrOptSolver, Solver};
    use dsct_mip::MipOptions;

    for seed in 0..6 {
        let inst = tiny_instance(seed, 5, 2, 0.5, 0.3);

        let old_fr = solve_fr_opt(&inst, &FrOptOptions::default());
        let new_fr = FrOptSolver::new().solve_typed(&inst);
        assert_eq!(old_fr.total_accuracy, new_fr.total_accuracy, "seed {seed}");
        assert_eq!(old_fr.profile, new_fr.profile, "seed {seed}");

        let old_approx = solve_approx(&inst, &ApproxOptions::default());
        let new_approx = ApproxSolver::new().solve_typed(&inst);
        assert_eq!(
            old_approx.total_accuracy, new_approx.total_accuracy,
            "seed {seed}"
        );
        assert_eq!(old_approx.assignment, new_approx.assignment, "seed {seed}");

        let old_full = edf_no_compression(&inst);
        let new_full = EdfSolver::no_compression().solve_typed(&inst);
        assert_eq!(old_full.total_accuracy, new_full.total_accuracy);
        assert_eq!(old_full.assignment, new_full.assignment);
        let old_lvl = edf_three_levels(&inst);
        let new_lvl = EdfSolver::three_levels().solve_typed(&inst);
        assert_eq!(old_lvl.total_accuracy, new_lvl.total_accuracy);

        let old_mip = solve_mip_exact(&inst, &MipOptions::default()).expect("builds");
        let new_mip = MipSolver::new().solve_typed(&inst).expect("builds");
        assert_eq!(old_mip.status, new_mip.status, "seed {seed}");
        assert_eq!(old_mip.total_accuracy, new_mip.total_accuracy);

        // And the erased trait-object path reports the same objective.
        let erased: &dyn Solver = &ApproxSolver::new();
        let sol = erased.solve(&inst).expect("approx is infallible");
        assert_eq!(sol.total_accuracy, new_approx.total_accuracy);
    }
}
