//! The sharded-server determinism contract, as CI runs it: server
//! replays must produce byte-identical report digests across worker
//! counts {1, 2, 8}, for every seed under test — including under
//! shard-kill chaos, where a whole cell dies and its pending pool
//! drains into the survivors. The `determinism` CI job runs this binary
//! twice — `--test-threads=1` and the harness default — so harness
//! threading is covered by the job matrix, not by code here.
//!
//! The runs double as oracle coverage: tests build in debug, so
//! `OnlineConfig::check_invariants` defaults to on and every per-shard
//! residual solution is verified by the solution oracle before it is
//! adopted.
//!
//! The property test at the bottom feeds NaN and infinite deadlines,
//! arrivals, and tenants through the submission path — the floats flow
//! into the EDF ready-queue and event sorts, which must reject them at
//! the door (typed errors) rather than panic or go non-deterministic.

use dsct_ea::chaos::ShardKillPlan;
use dsct_ea::online::{OnlineError, ReplanStrategy, ReplayConfig};
use dsct_ea::server::{replay_sharded, ScheduleServer, ServerConfig};
use dsct_ea::workload::{
    generate_arrivals, ArrivalConfig, ArrivalTrace, MachineConfig, OnlineTask, TaskConfig,
    ThetaDistribution,
};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const SEEDS: [u64; 3] = [11, 22, 33];

fn trace(seed: u64) -> ArrivalTrace {
    let cfg = ArrivalConfig {
        tasks: TaskConfig::paper(32, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
        machines: MachineConfig::paper_random(8),
        load: 1.0,
        deadline_slack: 2.0,
        beta: 0.5,
    };
    generate_arrivals(&cfg, seed)
        .expect("validated config")
        .with_tenants(16, seed)
}

fn server_config(workers: usize) -> ServerConfig {
    ServerConfig {
        replay: ReplayConfig {
            shards: 4,
            workers,
            ..ReplayConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn empty_plan() -> ShardKillPlan {
    ShardKillPlan {
        chaos_seed: 0,
        events: Vec::new(),
    }
}

#[test]
fn server_reports_are_byte_identical_across_worker_counts() {
    for seed in SEEDS {
        let t = trace(seed);
        let digests: Vec<String> = WORKER_COUNTS
            .iter()
            .map(|&w| {
                replay_sharded(&t, &server_config(w), &empty_plan())
                    .expect("valid replay")
                    .digest()
            })
            .collect();
        assert_eq!(
            digests[0], digests[1],
            "seed {seed}: workers 1 vs 2 diverged"
        );
        assert_eq!(
            digests[0], digests[2],
            "seed {seed}: workers 1 vs 8 diverged"
        );
    }
}

/// The incremental replanner is invisible in every report digest: for
/// each seed and worker count, a sharded replay under
/// `ReplanStrategy::Incremental` must digest byte-identically to the
/// cold pipeline — the per-cell caches and probe memos may change how
/// answers are computed, never what is answered.
#[test]
fn incremental_shards_digest_identically_to_cold() {
    let strategy_config = |workers: usize, replan: ReplanStrategy| {
        let mut cfg = server_config(workers);
        cfg.replay.online.replan = replan;
        cfg
    };
    for seed in SEEDS {
        let t = trace(seed);
        for &w in &WORKER_COUNTS {
            let cold = replay_sharded(&t, &strategy_config(w, ReplanStrategy::Cold), &empty_plan())
                .expect("valid replay");
            let inc = replay_sharded(
                &t,
                &strategy_config(w, ReplanStrategy::Incremental),
                &empty_plan(),
            )
            .expect("valid replay");
            assert_eq!(
                cold.digest(),
                inc.digest(),
                "seed {seed} workers {w}: incremental digest drifted from cold"
            );
        }
    }
}

#[test]
fn shard_kill_drains_are_deterministic_across_worker_counts() {
    for seed in SEEDS {
        let t = trace(seed);
        let plan = ShardKillPlan::generate(seed, t.horizon(), 4, 2);
        assert_eq!(plan.events.len(), 2, "seed {seed}: plan generated 2 kills");
        let reports: Vec<_> = WORKER_COUNTS
            .iter()
            .map(|&w| replay_sharded(&t, &server_config(w), &plan).expect("valid replay"))
            .collect();
        let digest = reports[0].digest();
        assert_eq!(
            digest,
            reports[1].digest(),
            "seed {seed}: kill replay diverged between 1 and 2 workers"
        );
        assert_eq!(
            digest,
            reports[2].digest(),
            "seed {seed}: kill replay diverged between 1 and 8 workers"
        );

        let report = &reports[0];
        assert_eq!(report.summary.kills, 2, "seed {seed}");
        let killed: Vec<usize> = plan.events.iter().map(|e| e.shard).collect();
        for d in &report.drains {
            assert!(
                killed.contains(&d.from),
                "seed {seed}: drain from a live shard"
            );
            let to = d.to.expect("survivors exist, so every drain lands");
            assert!(
                !killed.contains(&to),
                "seed {seed}: drain into a dead shard"
            );
            assert!(
                d.decision.is_some(),
                "seed {seed}: drain without a decision"
            );
        }
        // A killed cell must never dispatch after its kill instant.
        for e in &plan.events {
            let summary = &report.shard_summaries[e.shard];
            assert!(
                summary.makespan <= e.at + 1e-9 || summary.dispatched == 0,
                "seed {seed}: shard {} completed work at {} after dying at {}",
                e.shard,
                summary.makespan,
                e.at
            );
        }
    }
}

#[test]
fn every_arrival_is_accounted_for_exactly_once() {
    for seed in SEEDS {
        let t = trace(seed);
        let plan = ShardKillPlan::generate(seed ^ 0xABCD, t.horizon(), 4, 1);
        let report = replay_sharded(&t, &server_config(2), &plan).expect("valid replay");
        assert_eq!(report.decisions.len(), t.tasks.len(), "seed {seed}");
        // Each task id appears in at most one shard's outcome list, and
        // every submitted task shows up somewhere (served or recorded as
        // unserved) — drains move tasks, they never duplicate them.
        let mut seen = std::collections::BTreeSet::new();
        for shard in &report.shard_tasks {
            for (id, _) in shard {
                assert!(seen.insert(*id), "seed {seed}: task {id} in two shards");
            }
        }
        for task in &t.tasks {
            assert!(
                seen.contains(&task.id),
                "seed {seed}: task {} vanished",
                task.id
            );
        }
    }
}

/// Adversarial floats aimed at the sort sites: non-finite arrivals and
/// deadlines must come back as typed errors without panicking any EDF
/// ready-queue or event sort, and the server must stay fully usable
/// afterwards.
fn adversarial() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MAX),
        Just(-0.0),
        0.0f64..10.0,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hostile_floats_yield_typed_errors_not_panics(
        arrival in adversarial(),
        deadline in adversarial(),
        tenant in prop_oneof![Just(0u64), Just(u64::MAX), 0u64..64],
        seed in 0u64..64,
    ) {
        let t = trace(seed % 3);
        let mut server = ScheduleServer::new(&t.park, t.budget, server_config(2))
            .expect("valid park and budget");
        let probe = OnlineTask {
            id: 1_000_000,
            tenant,
            arrival,
            deadline,
            accuracy: t.tasks[0].accuracy.clone(),
        };
        match server.submit(&probe) {
            Ok(_) => {
                prop_assert!(arrival.is_finite() && deadline.is_finite(),
                    "non-finite input was admitted");
            }
            Err(OnlineError::InvalidTask { field, .. }) => {
                prop_assert!(field == "arrival" || field == "deadline");
            }
            Err(OnlineError::NonMonotoneClock { .. }) => {
                // f64::MAX deadlines are fine but a later finite arrival
                // can then be behind the clock — also a typed error.
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
        // Whatever happened, the server still serves a clean stream.
        let late = server.now().max(0.0) + 1.0;
        for (i, task) in t.tasks.iter().take(4).enumerate() {
            let mut task = task.clone();
            task.arrival = late + i as f64;
            task.deadline = task.arrival + 5.0;
            server.submit(&task).expect("clean tasks keep flowing");
        }
        let report = server.finish();
        prop_assert!(report.summary.total_accuracy.is_finite());
    }
}

#[test]
fn degenerate_server_shapes_are_typed_errors() {
    let t = trace(1);
    let mut cfg = server_config(1);
    cfg.replay.shards = 0;
    assert!(matches!(
        ScheduleServer::new(&t.park, t.budget, cfg),
        Err(OnlineError::EmptyPark)
    ));
    // More shards than machines: some cell would own no machines.
    let mut cfg = server_config(1);
    cfg.replay.shards = t.park.len() + 1;
    assert!(matches!(
        ScheduleServer::new(&t.park, t.budget, cfg),
        Err(OnlineError::EmptyPark)
    ));
    assert!(matches!(
        ScheduleServer::new(&t.park, f64::NAN, server_config(1)),
        Err(OnlineError::InvalidBudget(_))
    ));
}
