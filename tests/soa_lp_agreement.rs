//! PR 8 agreement suite for the data-oriented solve core and the LU
//! simplex (DESIGN.md §15):
//!
//! 1. **SoA vs legacy solver agreement** — the Δ-probe/checkpoint SoA
//!    path must match the legacy full-evaluation path to ≤ 1e-9 relative
//!    across 24 seeds × 3 load regimes, with the solution oracle
//!    validating the SoA output.
//! 2. **Simplex vs MIP at scale** — on relaxed instances (single
//!    machine, so the assignment binaries are forced and the MIP's root
//!    relaxation is integral) the LU/Forrest–Tomlin simplex objective
//!    must agree with the branch-and-bound MIP objective at n = 1000
//!    (scaled down under debug builds, where the LP alone would dominate
//!    the tier-1 wall clock).

use dsct_core::fr_opt::FrOptOptions;
use dsct_core::oracle::{Claims, SolutionOracle};
use dsct_core::schedule::ScheduleKind;
use dsct_core::solver::{FrOptSolver, LpSolver, MipSolver, Solution, SolverContext};
use dsct_mip::MipStatus;
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};

fn config(n: usize, m: usize, rho: f64, beta: f64) -> InstanceConfig {
    InstanceConfig {
        tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.1, max: 1.0 }),
        machines: MachineConfig::paper_random(m),
        rho,
        beta,
    }
}

/// SoA Δ-probe FR-OPT vs the legacy full-evaluation configuration
/// (incremental probes and the value cache disabled — every probe walks
/// the whole value function, the pre-SoA control flow): ≤ 1e-9 relative
/// agreement over 24 seeds × 3 deadline/budget load regimes.
#[test]
fn soa_and_legacy_fr_opt_agree_across_seeds_and_loads() {
    let loads = [(0.2, 0.3), (0.35, 0.5), (0.6, 0.8)];
    let (n, m) = if cfg!(debug_assertions) {
        (24, 3)
    } else {
        (48, 5)
    };
    let mut checked = 0usize;
    for (li, &(rho, beta)) in loads.iter().enumerate() {
        for seed in 0..24u64 {
            let inst = generate(&config(n, m, rho, beta), 9000 + 100 * li as u64 + seed);
            let mut ctx = SolverContext::new();
            let soa = FrOptSolver::new().solve_typed_with(&inst, &mut ctx);
            let mut legacy_opts = FrOptOptions::default();
            legacy_opts.search.incremental_probes = false;
            legacy_opts.search.use_value_cache = false;
            let legacy = FrOptSolver::with_options(legacy_opts).solve_typed(&inst);
            let scale = legacy.total_accuracy.abs().max(1.0);
            assert!(
                (soa.total_accuracy - legacy.total_accuracy).abs() <= 1e-9 * scale,
                "load {li} seed {seed}: SoA {} vs legacy {}",
                soa.total_accuracy,
                legacy.total_accuracy
            );
            // The oracle vets the SoA output, not just its objective.
            let sol = Solution::from_fr(&inst, soa);
            SolutionOracle::new()
                .verify(&inst, &sol, &Claims::feasible(ScheduleKind::Fractional))
                .expect("SoA FR-OPT output must satisfy every solution invariant");
            checked += 1;
        }
    }
    assert_eq!(checked, 72, "24 seeds x 3 loads");
}

/// LU-simplex LP vs branch-and-bound MIP on relaxed (single-machine)
/// instances: with m = 1 the assignment binaries are forced to 1, the
/// MIP's feasible set equals the LP's, and the two objectives must agree
/// to LP tolerance. Runs at n = 1000 in release (the scale the dense
/// simplex could not reach); scaled down in debug where tier-1 runs.
#[test]
fn simplex_and_mip_objectives_agree_on_relaxed_instances() {
    let n = if cfg!(debug_assertions) { 60 } else { 1000 };
    for seed in [11u64, 12] {
        let inst = generate(&config(n, 1, 0.35, 0.5), seed);
        let lp = LpSolver::new()
            .solve_typed(&inst)
            .expect("well-posed relaxation");
        assert_eq!(lp.status, dsct_lp::Status::Optimal, "seed {seed}");
        let mip = MipSolver::new().solve_typed(&inst).expect("well-posed MIP");
        assert_eq!(mip.status, MipStatus::Optimal, "seed {seed}");
        let scale = lp.total_accuracy.abs().max(1.0);
        assert!(
            (lp.total_accuracy - mip.total_accuracy).abs() <= 1e-6 * scale,
            "seed {seed} n {n}: LP {} vs MIP {}",
            lp.total_accuracy,
            mip.total_accuracy
        );
    }
}
