//! Shared helpers for the integration tests: the corpus JSON loaders
//! (counterparts of `dsct_core::oracle::instance_to_json` and
//! `dsct_core::oracle::staged_instance_to_json`).

use dsct_ea::accuracy::PwlAccuracy;
use dsct_ea::core::problem::{Instance, Task};
use dsct_ea::core::staged::{Stage, StagedInstance, StagedTask};
use dsct_ea::machines::{DvfsMachine, DvfsPark, Machine, MachinePark};
use serde_json::Value;

fn num(v: Option<&Value>, what: &str) -> Result<f64, String> {
    match v {
        Some(Value::Number(x)) => Ok(*x),
        other => Err(format!("{what}: expected number, got {other:?}")),
    }
}

fn arr<'a>(v: Option<&'a Value>, what: &str) -> Result<&'a [Value], String> {
    match v {
        Some(Value::Array(items)) => Ok(items),
        other => Err(format!("{what}: expected array, got {other:?}")),
    }
}

/// Parses the handrolled corpus JSON schema back into an [`Instance`],
/// re-validating every component through the public constructors (so a
/// corrupt corpus file fails loudly, not silently).
pub fn instance_from_json(text: &str) -> Result<Instance, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e:?}"))?;
    let budget = num(v.get("budget"), "budget")?;
    let machines = arr(v.get("machines"), "machines")?
        .iter()
        .map(|m| {
            let speed = num(m.get("speed"), "machine.speed")?;
            let power = num(m.get("power"), "machine.power")?;
            Machine::new(speed, power).map_err(|e| format!("bad machine: {e:?}"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    if machines.is_empty() {
        return Err("empty machine park".into());
    }
    let tasks = arr(v.get("tasks"), "tasks")?
        .iter()
        .map(|t| {
            let deadline = num(t.get("deadline"), "task.deadline")?;
            let acc = pwl_points(t.get("points"), "task.points")?;
            Ok(Task::new(deadline, acc))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Instance::new_sorting(tasks, MachinePark::new(machines), budget)
        .map_err(|e| format!("bad instance: {e:?}"))
}

fn pwl_points(v: Option<&Value>, what: &str) -> Result<PwlAccuracy, String> {
    let points = arr(v, what)?
        .iter()
        .map(|p| {
            let pair = match p {
                Value::Array(xs) if xs.len() == 2 => xs,
                other => return Err(format!("{what}: bad point: {other:?}")),
            };
            Ok((
                num(Some(&pair[0]), "point.x")?,
                num(Some(&pair[1]), "point.y")?,
            ))
        })
        .collect::<Result<Vec<(f64, f64)>, String>>()?;
    PwlAccuracy::new(&points).map_err(|e| format!("{what}: bad accuracy: {e:?}"))
}

/// Parses the staged corpus JSON schema (the counterpart of
/// `dsct_core::oracle::staged_instance_to_json`) back into a
/// [`StagedInstance`], re-validating through the public constructors.
pub fn staged_instance_from_json(text: &str) -> Result<StagedInstance, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e:?}"))?;
    let budget = num(v.get("budget"), "budget")?;
    let machines = arr(v.get("machines"), "machines")?
        .iter()
        .map(|m| {
            let points = arr(m.get("points"), "machine.points")?
                .iter()
                .map(|p| {
                    let speed = num(p.get("speed"), "point.speed")?;
                    let power = num(p.get("power"), "point.power")?;
                    Machine::new(speed, power).map_err(|e| format!("bad point: {e:?}"))
                })
                .collect::<Result<Vec<_>, String>>()?;
            DvfsMachine::new(points).map_err(|e| format!("bad machine: {e:?}"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let park = DvfsPark::new(machines).map_err(|e| format!("bad park: {e:?}"))?;
    let tasks = arr(v.get("tasks"), "tasks")?
        .iter()
        .map(|t| {
            let deadline = num(t.get("deadline"), "task.deadline")?;
            let stages = arr(t.get("stages"), "task.stages")?
                .iter()
                .map(|s| {
                    let preds = arr(s.get("preds"), "stage.preds")?
                        .iter()
                        .map(|p| num(Some(p), "pred").map(|x| x as usize))
                        .collect::<Result<Vec<usize>, String>>()?;
                    let accuracy = pwl_points(s.get("points"), "stage.points")?;
                    Ok(Stage::with_preds(accuracy, preds))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(StagedTask { deadline, stages })
        })
        .collect::<Result<Vec<_>, String>>()?;
    StagedInstance::new_sorting(tasks, park, budget).map_err(|e| format!("bad instance: {e:?}"))
}

/// The corpus file's label field (diagnostics).
pub fn corpus_label(text: &str) -> String {
    match serde_json::from_str::<Value>(text)
        .ok()
        .as_ref()
        .and_then(|v| v.get("label"))
    {
        Some(Value::String(s)) => s.clone(),
        _ => String::new(),
    }
}
