//! Cross-crate contracts of the online arrival-driven service
//! (`dsct-online`):
//!
//! 1. **Regret** — with zero runtime jitter, the realized total accuracy
//!    of any online replay never exceeds the FR-OPT optimum of the
//!    trace's clairvoyant instance (all tasks known at `t = 0` with
//!    their absolute deadlines). The online schedule is feasible for
//!    that instance — per machine, committed dispatches run
//!    back-to-back before their absolute deadlines — and FR-OPT
//!    relaxes release times, so the bound is structural.
//! 2. **Determinism** — replaying the same trace yields byte-identical
//!    summaries run-over-run and regardless of the solver-parallelism
//!    knob.
//! 3. **Degenerate arrivals** — a trace with every task arriving at
//!    `t = 0` reproduces the offline `ApproxSolver` solution
//!    bit-exactly (work, assignment, accuracy, energy).

use dsct_core::solver::{ApproxSolver, FrOptSolver, SolverContext};
use dsct_online::{replay, AdmissionPolicy, OnlineConfig, ReplanStrategy, ReplayConfig};
use dsct_workload::{
    generate, generate_arrivals, ArrivalConfig, ArrivalTrace, InstanceConfig, MachineConfig,
    TaskConfig, ThetaDistribution,
};

fn arrival_config(n: usize, load: f64) -> ArrivalConfig {
    ArrivalConfig {
        tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
        machines: MachineConfig::paper_random(3),
        load,
        deadline_slack: 2.0,
        beta: 0.5,
    }
}

#[test]
fn online_accuracy_never_beats_the_clairvoyant_fr_opt_bound() {
    let mut ctx = SolverContext::new();
    ctx.set_parallelism_budget(1);
    let policies = [
        AdmissionPolicy::AdmitAll,
        AdmissionPolicy::RejectIfInfeasible,
        AdmissionPolicy::DegradeToFit,
    ];
    for (t, &load) in [0.3, 1.0, 2.5].iter().enumerate() {
        for seed in 0..24u64 {
            let trace = generate_arrivals(&arrival_config(24, load), 1000 * t as u64 + seed)
                .expect("valid config");
            let bound = FrOptSolver::new()
                .solve_typed_with(&trace.clairvoyant_instance(), &mut ctx)
                .total_accuracy;
            // Cycle policies and replan strategies across seeds so every
            // combination sees several traces per load factor.
            let cfg = OnlineConfig {
                policy: policies[(seed % 3) as usize],
                replan: if seed % 2 == 0 {
                    ReplanStrategy::WarmStart
                } else {
                    ReplanStrategy::Cold
                },
                ..OnlineConfig::default()
            };
            let rcfg = ReplayConfig {
                online: cfg,
                ..ReplayConfig::default()
            };
            let report = replay(&trace, &rcfg).expect("zero jitter is valid");
            assert!(
                report.summary.total_accuracy <= bound + 1e-6,
                "load {load} seed {seed} {:?}/{:?}: online {} > clairvoyant bound {}",
                cfg.policy,
                cfg.replan,
                report.summary.total_accuracy,
                bound
            );
            assert!(
                report.summary.spent_energy <= trace.budget + 1e-6,
                "load {load} seed {seed}: spent {} over budget {}",
                report.summary.spent_energy,
                trace.budget
            );
        }
    }
}

#[test]
fn replays_are_byte_identical_across_runs_and_solver_parallelism() {
    for load in [0.5, 1.5] {
        let trace = generate_arrivals(&arrival_config(40, load), 99).expect("valid config");
        let mut renderings = Vec::new();
        for parallelism in [1usize, 2, 8] {
            for _run in 0..2 {
                let cfg = ReplayConfig {
                    online: OnlineConfig {
                        policy: AdmissionPolicy::DegradeToFit,
                        solver_parallelism: parallelism,
                        ..OnlineConfig::default()
                    },
                    ..ReplayConfig::default()
                };
                let report = replay(&trace, &cfg).expect("zero jitter is valid");
                renderings.push(format!("{:?}|{:?}", report.summary, report.decisions));
            }
        }
        for r in &renderings[1..] {
            assert_eq!(
                r, &renderings[0],
                "load {load}: summaries must be byte-identical for any \
                 solver parallelism and across repeated runs"
            );
        }
    }
}

#[test]
fn degenerate_all_at_zero_trace_reproduces_offline_approx_bit_exactly() {
    for seed in [7u64, 21, 84] {
        let icfg = InstanceConfig {
            tasks: TaskConfig::paper(30, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
            machines: MachineConfig::paper_random(3),
            rho: 0.25,
            beta: 0.5,
        };
        let inst = generate(&icfg, seed);
        let offline = ApproxSolver::new().solve_typed(&inst);
        let trace = ArrivalTrace::degenerate(&inst);
        let report = replay(&trace, &ReplayConfig::default()).expect("zero jitter is valid");

        assert_eq!(
            report.summary.solves, 1,
            "seed {seed}: a same-timestamp batch must cost exactly one solve"
        );
        assert_eq!(
            report.summary.total_accuracy, offline.total_accuracy,
            "seed {seed}: realized accuracy must equal the offline \
             ApproxSolver objective bit-exactly"
        );
        // Per-task: same machine, same work, same accuracy — bit for bit.
        for j in 0..inst.num_tasks() {
            let outcome = &report.trace.tasks[j];
            assert_eq!(
                outcome.machine, offline.assignment[j],
                "seed {seed} task {j}: assignment differs"
            );
            assert_eq!(
                outcome.work,
                offline.schedule.flops(j, &inst),
                "seed {seed} task {j}: work differs"
            );
            assert_eq!(
                outcome.accuracy,
                offline.schedule.accuracy(j, &inst),
                "seed {seed} task {j}: accuracy differs"
            );
        }
        // Realized energy equals the integral schedule's planned energy
        // (zero jitter ⇒ actual = planned) and stays within budget.
        let planned_energy = offline.schedule.energy(&inst);
        assert!(
            (report.summary.spent_energy - planned_energy).abs() < 1e-9,
            "seed {seed}: spent {} != planned {}",
            report.summary.spent_energy,
            planned_energy
        );
    }
}

#[test]
fn warm_and_cold_replans_agree_on_decisions_and_accuracy() {
    for load in [0.4, 1.2] {
        let trace = generate_arrivals(&arrival_config(36, load), 5150).expect("valid config");
        let run = |replan: ReplanStrategy| {
            let cfg = ReplayConfig {
                online: OnlineConfig {
                    policy: AdmissionPolicy::DegradeToFit,
                    replan,
                    ..OnlineConfig::default()
                },
                ..ReplayConfig::default()
            };
            replay(&trace, &cfg).expect("zero jitter is valid")
        };
        let warm = run(ReplanStrategy::WarmStart);
        let cold = run(ReplanStrategy::Cold);
        assert_eq!(
            warm.decisions, cold.decisions,
            "load {load}: warm-started and cold replans must admit identically"
        );
        // The profile search is a local descent, so warm and cold paths
        // may settle on different near-equal optima; the values must
        // stay within a small relative band of each other.
        let tol = 1e-2 * cold.summary.total_accuracy.abs().max(1.0);
        assert!(
            (warm.summary.total_accuracy - cold.summary.total_accuracy).abs() <= tol,
            "load {load}: warm {} vs cold {} accuracy",
            warm.summary.total_accuracy,
            cold.summary.total_accuracy
        );
    }
}

#[test]
fn jitter_feeds_back_into_the_ledger() {
    let trace = generate_arrivals(&arrival_config(30, 1.0), 31337).expect("valid config");
    let run = |jitter: f64| {
        let cfg = ReplayConfig {
            online: OnlineConfig {
                speed_jitter: jitter,
                jitter_seed: 7,
                ..OnlineConfig::default()
            },
            ..ReplayConfig::default()
        };
        replay(&trace, &cfg).expect("valid jitter")
    };
    let calm = run(0.0);
    // Zero jitter: planned committed energy settles to exactly what is
    // spent, and nothing stays committed at the end.
    assert!((calm.ledger.spent() - calm.summary.committed_energy).abs() < 1e-9);
    assert_eq!(calm.ledger.committed(), 0.0);

    let noisy = run(0.3);
    // Under jitter, actuals deviate from plans — the ledger must have
    // recorded a real difference between committed and settled energy.
    assert!(
        (noisy.ledger.spent() - noisy.summary.committed_energy).abs() > 1e-9,
        "30% jitter should make actual energy differ from planned"
    );
    // And the run is still reproducible.
    let again = run(0.3);
    assert_eq!(
        format!("{:?}", noisy.summary),
        format!("{:?}", again.summary)
    );
}
