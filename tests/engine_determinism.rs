//! The experiment engine's determinism contract: the per-cell summaries
//! of an [`ExperimentRun`] are byte-identical whether the run used one
//! worker thread or every available core, across several master seeds.
//!
//! Byte-identity is checked on the serde-JSON rendering of the
//! deterministic sections ([`ExperimentRun::cells`] and the per-item
//! measures), which catches any drift in f64 bits, aggregation order, or
//! failure accounting. Only solvers whose output is a pure function of
//! the instance participate (FR-OPT, APPROX, EDF) — a wall-clock time
//! limit on the LP/MIP paths makes their *status* scheduling-dependent,
//! which is exactly why the engine keeps timing in separate sections.

use dsct_core::solver::{ApproxSolver, EdfSolver, FrOptSolver, Solver};
use dsct_sim::engine::{derive_seed, CellSpec, ExperimentPlan, ExperimentRun};
use dsct_workload::{InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use std::sync::Arc;

fn grid() -> Vec<CellSpec> {
    let cell = |label: &str, n: usize, m: usize, rho: f64, beta: f64| {
        CellSpec::new(
            label,
            InstanceConfig {
                tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
                machines: MachineConfig::paper_random(m),
                rho,
                beta,
            },
        )
    };
    vec![
        cell("small_tight", 6, 2, 0.1, 0.3),
        cell("small_loose", 8, 3, 0.5, 0.6),
        cell("mid", 12, 2, 0.35, 0.5),
        cell("many_machines", 10, 4, 0.2, 0.4),
    ]
}

fn solvers() -> Vec<Arc<dyn Solver>> {
    vec![
        Arc::new(FrOptSolver::new()),
        Arc::new(ApproxSolver::new()),
        Arc::new(EdfSolver::no_compression()),
        Arc::new(EdfSolver::three_levels()),
    ]
}

fn run_with(threads: usize, master_seed: u64) -> ExperimentRun {
    ExperimentPlan::new(grid(), solvers())
        .replications(3)
        .master_seed(master_seed)
        .threads(threads)
        .keep_items(true)
        .run()
}

/// The deterministic sections of a run, rendered to bytes.
fn deterministic_bytes(run: &ExperimentRun) -> (String, String) {
    let cells = serde_json::to_string(&run.cells).expect("serializable");
    let items = run.items.as_ref().expect("items kept");
    let coords: Vec<_> = items
        .iter()
        .map(|i| (i.cell, i.rep, i.solver, i.seed))
        .collect();
    let measures: Vec<_> = items.iter().map(|i| &i.measure).collect();
    let measures_json = serde_json::to_string(&measures).expect("serializable");
    (cells, format!("{coords:?}{measures_json}"))
}

#[test]
fn summaries_are_byte_identical_across_thread_counts() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2);
    for master_seed in [1u64, 424242, 0xDEAD_BEEF] {
        let serial = run_with(1, master_seed);
        let parallel = run_with(cpus, master_seed);
        assert_eq!(serial.threads_used, 1);
        assert_eq!(parallel.threads_used, cpus);
        let (sc, sm) = deterministic_bytes(&serial);
        let (pc, pm) = deterministic_bytes(&parallel);
        assert_eq!(
            sc, pc,
            "cell summaries diverged at master seed {master_seed}"
        );
        assert_eq!(
            sm, pm,
            "item measures diverged at master seed {master_seed}"
        );
    }
}

#[test]
fn default_thread_count_matches_serial_too() {
    // threads = 0 resolves to available parallelism; same contract.
    let serial = run_with(1, 7);
    let auto = run_with(0, 7);
    assert_eq!(deterministic_bytes(&serial).0, deterministic_bytes(&auto).0);
}

#[test]
fn different_master_seeds_give_different_data() {
    // Sanity check that the byte-comparison above is not vacuous.
    let a = run_with(2, 1);
    let b = run_with(2, 2);
    assert_ne!(deterministic_bytes(&a).0, deterministic_bytes(&b).0);
    // ... because the derived item seeds differ.
    assert_ne!(derive_seed(1, 0, 0), derive_seed(2, 0, 0));
}

#[test]
fn repeated_runs_are_reproducible() {
    let a = run_with(3, 99);
    let b = run_with(3, 99);
    assert_eq!(deterministic_bytes(&a), deterministic_bytes(&b));
    assert_eq!(a.cells, b.cells);
}
