//! Metamorphic properties of the solvers: known-answer tests are scarce
//! for DSCT-EA, but *relations between instances* are exact. Each
//! relation transforms a randomized instance in a way with a provable
//! effect on the optimum, solves both sides, and routes every solution
//! through the solution oracle ([`dsct_core::oracle`]) so a passing
//! relation also certifies feasibility, agreement, and stationarity.
//!
//! Relations (each over ≥ 24 seeded instances):
//! 1. powers × c and budget × c — identical feasible set, value equal;
//! 2. speeds × c with the work axis scaled by c — time and energy of
//!    every schedule unchanged, value equal;
//! 3. adding a machine — never decreases the FR-OPT value;
//! 4. tightening the budget — never increases the FR-OPT value;
//! 5. relabeling equal-deadline tasks — value invariant under
//!    permutation.

use dsct_core::oracle::{self, Claims};
use dsct_core::problem::{Instance, Task};
use dsct_core::solver::{ApproxSolver, FrOptSolver, Solution};
use dsct_machines::{Machine, MachinePark};
use dsct_workload::{InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};

const SEEDS: std::ops::Range<u64> = 0..24;

fn base_config() -> InstanceConfig {
    InstanceConfig {
        tasks: TaskConfig::paper(12, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
        machines: MachineConfig::paper_random(3),
        rho: 0.4,
        beta: 0.5,
    }
}

fn base_instance(seed: u64) -> Instance {
    dsct_workload::generate(&base_config(), seed)
}

/// Solves FR-OPT and pushes the solution through the oracle with the
/// full fractional-optimum claims (feasibility + agreement + KKT).
fn solve_fr_checked(inst: &Instance, label: &str) -> Solution {
    let sol = Solution::from_fr(inst, FrOptSolver::new().solve_typed(inst));
    oracle::enforce(inst, &sol, &Claims::fr_optimal(), label);
    sol
}

fn rebuild(tasks: Vec<Task>, machines: Vec<Machine>, budget: f64) -> Instance {
    Instance::new_sorting(tasks, MachinePark::new(machines), budget)
        .expect("transformed instance stays valid")
}

fn value_scale(inst: &Instance) -> f64 {
    inst.total_max_accuracy().max(1.0)
}

/// Relation 1: multiplying every machine power *and* the budget by `c`
/// rescales both sides of `Σ_r P_r·t_{jr} ≤ B` identically, so the
/// feasible set — and therefore the optimum — is unchanged.
#[test]
fn scaling_powers_and_budget_leaves_the_optimum_unchanged() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let c = 2.0; // power of two: the rescaling is exact in f64
        let scaled = rebuild(
            inst.tasks().to_vec(),
            inst.machines()
                .machines()
                .iter()
                .map(|m| Machine::new(m.speed(), m.power() * c).expect("valid machine"))
                .collect(),
            inst.budget() * c,
        );
        let a = solve_fr_checked(&inst, "metamorphic/power-scale/base");
        let b = solve_fr_checked(&scaled, "metamorphic/power-scale/scaled");
        let tol = 1e-6 * value_scale(&inst);
        assert!(
            (a.total_accuracy - b.total_accuracy).abs() <= tol,
            "seed {seed}: power/budget scaling moved the optimum: {} vs {}",
            a.total_accuracy,
            b.total_accuracy,
        );
    }
}

/// Relation 2: multiplying every speed by `c` while stretching each
/// task's work axis by `c` (via [`dsct_accuracy::PwlAccuracy::scale_f`])
/// maps schedules one-to-one with identical times, energies, and
/// accuracies — the optimum is unchanged.
#[test]
fn scaling_speeds_and_work_axis_leaves_the_optimum_unchanged() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let c = 2.0;
        let scaled = rebuild(
            inst.tasks()
                .iter()
                .map(|t| Task::new(t.deadline, t.accuracy.scale_f(c).expect("positive factor")))
                .collect(),
            inst.machines()
                .machines()
                .iter()
                .map(|m| Machine::new(m.speed() * c, m.power()).expect("valid machine"))
                .collect(),
            inst.budget(),
        );
        let a = solve_fr_checked(&inst, "metamorphic/speed-scale/base");
        let b = solve_fr_checked(&scaled, "metamorphic/speed-scale/scaled");
        let tol = 1e-6 * value_scale(&inst);
        assert!(
            (a.total_accuracy - b.total_accuracy).abs() <= tol,
            "seed {seed}: speed/work scaling moved the optimum: {} vs {}",
            a.total_accuracy,
            b.total_accuracy,
        );
    }
}

/// Relation 3: adding a machine only enlarges the feasible set (the old
/// schedule assigns the new machine nothing), so the FR-OPT value never
/// decreases.
#[test]
fn adding_a_machine_never_decreases_the_optimum() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let mut machines = inst.machines().machines().to_vec();
        // A mid-range paper machine; any valid machine works.
        machines.push(Machine::new(5000.0, 100.0).expect("valid machine"));
        let bigger = rebuild(inst.tasks().to_vec(), machines, inst.budget());
        let a = solve_fr_checked(&inst, "metamorphic/add-machine/base");
        let b = solve_fr_checked(&bigger, "metamorphic/add-machine/bigger");
        let tol = 1e-6 * value_scale(&inst);
        assert!(
            b.total_accuracy >= a.total_accuracy - tol,
            "seed {seed}: adding a machine lowered the optimum: {} -> {}",
            a.total_accuracy,
            b.total_accuracy,
        );
    }
}

/// Relation 4: shrinking the budget only shrinks the feasible set, so
/// the FR-OPT value never increases.
#[test]
fn tightening_the_budget_never_increases_the_optimum() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let tighter = inst
            .with_budget(inst.budget() * 0.5)
            .expect("halved budget stays valid");
        let a = solve_fr_checked(&inst, "metamorphic/tighten-budget/base");
        let b = solve_fr_checked(&tighter, "metamorphic/tighten-budget/tighter");
        let tol = 1e-6 * value_scale(&inst);
        assert!(
            b.total_accuracy <= a.total_accuracy + tol,
            "seed {seed}: tightening the budget raised the optimum: {} -> {}",
            a.total_accuracy,
            b.total_accuracy,
        );
    }
}

/// Relation 5: with all deadlines equal, task order is pure labeling —
/// reversing it (and re-sorting through [`Instance::new_sorting`], a
/// stable sort) must not move the optimum.
#[test]
fn relabeling_equal_deadline_tasks_leaves_the_optimum_unchanged() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let d = inst.d_max();
        let equalized: Vec<Task> = inst
            .tasks()
            .iter()
            .map(|t| Task::new(d, t.accuracy.clone()))
            .collect();
        let mut reversed = equalized.clone();
        reversed.reverse();
        let a = rebuild(
            equalized,
            inst.machines().machines().to_vec(),
            inst.budget(),
        );
        let b = rebuild(reversed, inst.machines().machines().to_vec(), inst.budget());
        let sa = solve_fr_checked(&a, "metamorphic/relabel/forward");
        let sb = solve_fr_checked(&b, "metamorphic/relabel/reversed");
        let tol = 1e-6 * value_scale(&a);
        assert!(
            (sa.total_accuracy - sb.total_accuracy).abs() <= tol,
            "seed {seed}: relabeling equal-deadline tasks moved the optimum: {} vs {}",
            sa.total_accuracy,
            sb.total_accuracy,
        );
    }
}

/// The integral approximation also survives every transformed instance:
/// feasibility plus the paper's guarantee `G` against its own fractional
/// upper bound, for every seed (oracle-enforced).
#[test]
fn approx_solutions_pass_the_oracle_on_transformed_instances() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let tighter = inst
            .with_budget(inst.budget() * 0.5)
            .expect("halved budget stays valid");
        for (label, i) in [
            ("metamorphic/approx/base", &inst),
            ("metamorphic/approx/tight", &tighter),
        ] {
            let sol = Solution::from_approx(i, ApproxSolver::new().solve_typed(i));
            oracle::enforce(i, &sol, &Claims::approx(), label);
        }
    }
}
