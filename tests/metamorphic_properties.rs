//! Metamorphic properties of the solvers: known-answer tests are scarce
//! for DSCT-EA, but *relations between instances* are exact. Each
//! relation transforms a randomized instance in a way with a provable
//! effect on the optimum, solves both sides, and routes every solution
//! through the solution oracle ([`dsct_core::oracle`]) so a passing
//! relation also certifies feasibility, agreement, and stationarity.
//!
//! Relations (each over ≥ 24 seeded instances):
//! 1. powers × c and budget × c — identical feasible set, value equal;
//! 2. speeds × c with the work axis scaled by c — time and energy of
//!    every schedule unchanged, value equal;
//! 3. adding a machine — never decreases the FR-OPT value;
//! 4. tightening the budget — never increases the FR-OPT value;
//! 5. relabeling equal-deadline tasks — value invariant under
//!    permutation.
//!
//! Staged relations (DESIGN §17):
//! 6. chain-collapse — a chain-DAG instance built by equal-splitting
//!    each flat curve lowers back to the flat instance; the staged
//!    solver must agree with the flat solver to ≤ 1e-9 (proptest over
//!    24 generated shapes plus a bit-exact seeded sweep);
//! 7. stage-splitting never improves the optimum — the staged solution
//!    stays below the flat instance's fractional bound;
//! 8. dominated operating points are inert — adding them changes no
//!    solution bit.

use dsct_core::oracle::{self, Claims};
use dsct_core::problem::{Instance, Task};
use dsct_core::solver::{ApproxSolver, FrOptSolver, Solution, Solver};
use dsct_core::staged::{StagedApproxSolver, StagedInstance};
use dsct_machines::{Machine, MachinePark};
use dsct_workload::{
    generate_staged, DagShape, InstanceConfig, MachineConfig, StagedConfig, TaskConfig,
    ThetaDistribution,
};
use proptest::prelude::*;

const SEEDS: std::ops::Range<u64> = 0..24;

fn base_config() -> InstanceConfig {
    InstanceConfig {
        tasks: TaskConfig::paper(12, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
        machines: MachineConfig::paper_random(3),
        rho: 0.4,
        beta: 0.5,
    }
}

fn base_instance(seed: u64) -> Instance {
    dsct_workload::generate(&base_config(), seed)
}

/// Solves FR-OPT and pushes the solution through the oracle with the
/// full fractional-optimum claims (feasibility + agreement + KKT).
fn solve_fr_checked(inst: &Instance, label: &str) -> Solution {
    let sol = Solution::from_fr(inst, FrOptSolver::new().solve_typed(inst));
    oracle::enforce(inst, &sol, &Claims::fr_optimal(), label);
    sol
}

fn rebuild(tasks: Vec<Task>, machines: Vec<Machine>, budget: f64) -> Instance {
    Instance::new_sorting(tasks, MachinePark::new(machines), budget)
        .expect("transformed instance stays valid")
}

fn value_scale(inst: &Instance) -> f64 {
    inst.total_max_accuracy().max(1.0)
}

/// Relation 1: multiplying every machine power *and* the budget by `c`
/// rescales both sides of `Σ_r P_r·t_{jr} ≤ B` identically, so the
/// feasible set — and therefore the optimum — is unchanged.
#[test]
fn scaling_powers_and_budget_leaves_the_optimum_unchanged() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let c = 2.0; // power of two: the rescaling is exact in f64
        let scaled = rebuild(
            inst.tasks().to_vec(),
            inst.machines()
                .machines()
                .iter()
                .map(|m| Machine::new(m.speed(), m.power() * c).expect("valid machine"))
                .collect(),
            inst.budget() * c,
        );
        let a = solve_fr_checked(&inst, "metamorphic/power-scale/base");
        let b = solve_fr_checked(&scaled, "metamorphic/power-scale/scaled");
        let tol = 1e-6 * value_scale(&inst);
        assert!(
            (a.total_accuracy - b.total_accuracy).abs() <= tol,
            "seed {seed}: power/budget scaling moved the optimum: {} vs {}",
            a.total_accuracy,
            b.total_accuracy,
        );
    }
}

/// Relation 2: multiplying every speed by `c` while stretching each
/// task's work axis by `c` (via [`dsct_accuracy::PwlAccuracy::scale_f`])
/// maps schedules one-to-one with identical times, energies, and
/// accuracies — the optimum is unchanged.
#[test]
fn scaling_speeds_and_work_axis_leaves_the_optimum_unchanged() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let c = 2.0;
        let scaled = rebuild(
            inst.tasks()
                .iter()
                .map(|t| Task::new(t.deadline, t.accuracy.scale_f(c).expect("positive factor")))
                .collect(),
            inst.machines()
                .machines()
                .iter()
                .map(|m| Machine::new(m.speed() * c, m.power()).expect("valid machine"))
                .collect(),
            inst.budget(),
        );
        let a = solve_fr_checked(&inst, "metamorphic/speed-scale/base");
        let b = solve_fr_checked(&scaled, "metamorphic/speed-scale/scaled");
        let tol = 1e-6 * value_scale(&inst);
        assert!(
            (a.total_accuracy - b.total_accuracy).abs() <= tol,
            "seed {seed}: speed/work scaling moved the optimum: {} vs {}",
            a.total_accuracy,
            b.total_accuracy,
        );
    }
}

/// Relation 3: adding a machine only enlarges the feasible set (the old
/// schedule assigns the new machine nothing), so the FR-OPT value never
/// decreases.
#[test]
fn adding_a_machine_never_decreases_the_optimum() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let mut machines = inst.machines().machines().to_vec();
        // A mid-range paper machine; any valid machine works.
        machines.push(Machine::new(5000.0, 100.0).expect("valid machine"));
        let bigger = rebuild(inst.tasks().to_vec(), machines, inst.budget());
        let a = solve_fr_checked(&inst, "metamorphic/add-machine/base");
        let b = solve_fr_checked(&bigger, "metamorphic/add-machine/bigger");
        let tol = 1e-6 * value_scale(&inst);
        assert!(
            b.total_accuracy >= a.total_accuracy - tol,
            "seed {seed}: adding a machine lowered the optimum: {} -> {}",
            a.total_accuracy,
            b.total_accuracy,
        );
    }
}

/// Relation 4: shrinking the budget only shrinks the feasible set, so
/// the FR-OPT value never increases.
#[test]
fn tightening_the_budget_never_increases_the_optimum() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let tighter = inst
            .with_budget(inst.budget() * 0.5)
            .expect("halved budget stays valid");
        let a = solve_fr_checked(&inst, "metamorphic/tighten-budget/base");
        let b = solve_fr_checked(&tighter, "metamorphic/tighten-budget/tighter");
        let tol = 1e-6 * value_scale(&inst);
        assert!(
            b.total_accuracy <= a.total_accuracy + tol,
            "seed {seed}: tightening the budget raised the optimum: {} -> {}",
            a.total_accuracy,
            b.total_accuracy,
        );
    }
}

/// Relation 5: with all deadlines equal, task order is pure labeling —
/// reversing it (and re-sorting through [`Instance::new_sorting`], a
/// stable sort) must not move the optimum.
#[test]
fn relabeling_equal_deadline_tasks_leaves_the_optimum_unchanged() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let d = inst.d_max();
        let equalized: Vec<Task> = inst
            .tasks()
            .iter()
            .map(|t| Task::new(d, t.accuracy.clone()))
            .collect();
        let mut reversed = equalized.clone();
        reversed.reverse();
        let a = rebuild(
            equalized,
            inst.machines().machines().to_vec(),
            inst.budget(),
        );
        let b = rebuild(reversed, inst.machines().machines().to_vec(), inst.budget());
        let sa = solve_fr_checked(&a, "metamorphic/relabel/forward");
        let sb = solve_fr_checked(&b, "metamorphic/relabel/reversed");
        let tol = 1e-6 * value_scale(&a);
        assert!(
            (sa.total_accuracy - sb.total_accuracy).abs() <= tol,
            "seed {seed}: relabeling equal-deadline tasks moved the optimum: {} vs {}",
            sa.total_accuracy,
            sb.total_accuracy,
        );
    }
}

fn staged_config(n: usize, m: usize, depth: usize, extra_points: usize) -> StagedConfig {
    StagedConfig {
        base: InstanceConfig {
            tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
            machines: MachineConfig::paper_random(m),
            rho: 0.4,
            beta: 0.5,
        },
        shape: DagShape::Chain,
        depth,
        extra_points,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Relation 6 (proptest): collapsing any generated chain DAG to its
    /// flat equivalent agrees with the flat-model solver to ≤ 1e-9.
    /// The chain is built by equal-splitting each flat curve, so the
    /// min-rule lowering recomposes the flat instance; the staged solve
    /// (oracle-enforced via `checked()`) must land on the same value,
    /// energy, and per-task work as the flat `ApproxSolver`.
    #[test]
    fn chain_collapse_agrees_with_the_flat_solver(
        n in 2usize..16,
        m in 1usize..4,
        depth in 1usize..5,
        extra in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let cfg = staged_config(n, m, depth, extra);
        let staged = generate_staged(&cfg, seed).expect("valid staged config");
        let flat = dsct_workload::generate(&cfg.base, seed);
        let staged_sol = StagedApproxSolver::checked().solve(&staged).unwrap();
        let flat_sol = Solver::solve(&ApproxSolver::new(), &flat).unwrap();
        prop_assert!(
            (staged_sol.total_accuracy - flat_sol.total_accuracy).abs() <= 1e-9,
            "collapse drift: staged {} vs flat {}",
            staged_sol.total_accuracy, flat_sol.total_accuracy
        );
        prop_assert!(
            (staged_sol.energy - flat_sol.energy).abs() <= 1e-9 * (1.0 + flat.budget()),
            "energy drift: staged {} vs flat {}", staged_sol.energy, flat_sol.energy
        );
        for j in 0..flat.num_tasks() {
            let staged_work: f64 = staged_sol.stage_work[j].iter().sum();
            let cap = flat.task(j).accuracy.f_max();
            prop_assert!(
                (staged_work - flat_sol.flops[j]).abs() <= 1e-9 * (1.0 + cap),
                "task {j} work drift: staged {} vs flat {}",
                staged_work, flat_sol.flops[j]
            );
        }
    }
}

/// Relation 6 (bit-exact corner): at depth 1 the staged pipeline *is*
/// the flat pipeline — same curves, same machines — so the embedded flat
/// solution must match the flat solver bit for bit, seed by seed.
#[test]
fn single_stage_collapse_reproduces_the_flat_solution_bit_for_bit() {
    for seed in SEEDS {
        let cfg = staged_config(10, 3, 1, 2);
        let staged = generate_staged(&cfg, seed).expect("valid staged config");
        let flat = dsct_workload::generate(&cfg.base, seed);
        assert_eq!(
            staged.lowered().unwrap(),
            flat,
            "seed {seed}: lowering drifted"
        );
        let staged_sol = StagedApproxSolver::checked().solve(&staged).unwrap();
        let flat_sol = Solver::solve(&ApproxSolver::new(), &flat).unwrap();
        assert_eq!(
            staged_sol.total_accuracy.to_bits(),
            flat_sol.total_accuracy.to_bits(),
            "seed {seed}: accuracy drifted"
        );
        assert_eq!(
            staged_sol.energy.to_bits(),
            flat_sol.energy.to_bits(),
            "seed {seed}: energy drifted"
        );
        for j in 0..flat.num_tasks() {
            assert_eq!(
                staged_sol.stage_work[j][0].to_bits(),
                flat_sol.flops[j].to_bits(),
                "seed {seed} task {j}: work drifted"
            );
        }
    }
}

/// Relation 7: splitting tasks into stages never improves the optimum —
/// any staged schedule restricted to the selected operating points
/// induces a feasible flat schedule of the lowered instance, so the
/// lowered FR-OPT value is an upper bound on the staged solution.
#[test]
fn stage_splitting_never_improves_the_optimum() {
    for seed in SEEDS {
        for depth in [2usize, 3, 4] {
            let cfg = staged_config(10, 2, depth, 1);
            let staged = generate_staged(&cfg, seed).expect("valid staged config");
            let lowered = staged.lowered().unwrap();
            let staged_sol = StagedApproxSolver::checked().solve(&staged).unwrap();
            let fr = solve_fr_checked(&lowered, "metamorphic/stage-split/fr");
            let tol = 1e-6 * value_scale(&lowered);
            assert!(
                staged_sol.total_accuracy <= fr.total_accuracy + tol,
                "seed {seed} depth {depth}: staged {} beats the fractional bound {}",
                staged_sol.total_accuracy,
                fr.total_accuracy,
            );
        }
    }
}

/// Relation 8: adding a dominated operating point (slower and less
/// efficient than an existing one) can never change the solution —
/// selection ignores it, so every solution bit is identical.
#[test]
fn adding_a_dominated_operating_point_changes_nothing() {
    for seed in SEEDS {
        let lean_cfg = staged_config(8, 2, 2, 0);
        let fat_cfg = staged_config(8, 2, 2, 3);
        let lean = generate_staged(&lean_cfg, seed).expect("valid staged config");
        let fat = generate_staged(&fat_cfg, seed).expect("valid staged config");
        // Same tasks, same budget; only the (dominated) catalogs differ.
        assert_eq!(lean.tasks(), fat.tasks(), "seed {seed}: tasks drifted");
        assert_eq!(
            StagedInstance::from_flat(&lean.lowered().unwrap())
                .lowered()
                .unwrap(),
            StagedInstance::from_flat(&fat.lowered().unwrap())
                .lowered()
                .unwrap(),
            "seed {seed}: dominated points leaked into the lowering"
        );
        let a = StagedApproxSolver::checked().solve(&lean).unwrap();
        let b = StagedApproxSolver::checked().solve(&fat).unwrap();
        assert_eq!(
            a.total_accuracy.to_bits(),
            b.total_accuracy.to_bits(),
            "seed {seed}: accuracy changed"
        );
        assert_eq!(
            a.energy.to_bits(),
            b.energy.to_bits(),
            "seed {seed}: energy changed"
        );
        assert_eq!(
            a.stage_work, b.stage_work,
            "seed {seed}: work vectors changed"
        );
        assert_eq!(a.schedule.placements().len(), b.schedule.placements().len());
        for (pa, pb) in a.schedule.placements().iter().zip(b.schedule.placements()) {
            for (x, y) in pa.iter().zip(pb) {
                assert_eq!((x.machine, x.point), (y.machine, y.point), "seed {seed}");
                assert_eq!(x.start.to_bits(), y.start.to_bits(), "seed {seed}");
                assert_eq!(x.duration.to_bits(), y.duration.to_bits(), "seed {seed}");
            }
        }
    }
}

/// The integral approximation also survives every transformed instance:
/// feasibility plus the paper's guarantee `G` against its own fractional
/// upper bound, for every seed (oracle-enforced).
#[test]
fn approx_solutions_pass_the_oracle_on_transformed_instances() {
    for seed in SEEDS {
        let inst = base_instance(seed);
        let tighter = inst
            .with_budget(inst.budget() * 0.5)
            .expect("halved budget stays valid");
        for (label, i) in [
            ("metamorphic/approx/base", &inst),
            ("metamorphic/approx/tight", &tighter),
        ] {
            let sol = Solution::from_approx(i, ApproxSolver::new().solve_typed(i));
            oracle::enforce(i, &sol, &Claims::approx(), label);
        }
    }
}
