//! Shard recovery invariants: rendezvous routing hands a recovered
//! shard exactly the tenants it owned before the kill (ties to the
//! lower shard index, as everywhere in HRW), and every task id stays
//! single-accounted across the full drain → re-route → recover chain —
//! the recovered incarnation and the archived dead one never both claim
//! an outcome for the same id.

use dsct_ea::chaos::ShardChaosPlan;
use dsct_ea::gateway::{replay_gateway, GatewayConfig};
use dsct_ea::online::ReplayConfig;
use dsct_ea::server::{Router, ScheduleServer, ServerConfig};
use dsct_ea::workload::{
    generate_arrivals, ArrivalConfig, ArrivalTrace, MachineConfig, TaskConfig, ThetaDistribution,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn trace(seed: u64) -> ArrivalTrace {
    let cfg = ArrivalConfig {
        tasks: TaskConfig::paper(32, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
        machines: MachineConfig::paper_random(8),
        load: 1.0,
        deadline_slack: 2.0,
        beta: 0.5,
    };
    generate_arrivals(&cfg, seed)
        .expect("validated config")
        .with_tenants(16, seed)
}

fn server_config(shards: usize) -> ServerConfig {
    ServerConfig {
        replay: ReplayConfig {
            shards,
            workers: 2,
            ..ReplayConfig::default()
        },
        ..ServerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// HRW minimal disruption, round-tripped: killing a shard reroutes
    /// only that shard's tenants (each to a live shard); reviving it
    /// restores the pre-kill route for every tenant.
    #[test]
    fn revive_restores_prekill_routes(
        shards in 2usize..=8,
        kill_pick in 0usize..8,
        tenant_base in 0u64..1_000_000,
    ) {
        let dead = kill_pick % shards;
        let mut router = Router::new(shards);
        let tenants: Vec<u64> = (0..64).map(|i| tenant_base + i).collect();
        let before: Vec<usize> = tenants
            .iter()
            .map(|&t| router.route(t).expect("all shards live"))
            .collect();
        router.kill(dead);
        for (&tenant, &home) in tenants.iter().zip(&before) {
            let rerouted = router.route(tenant);
            if home == dead {
                let dst = rerouted.expect("other shards live");
                prop_assert_ne!(dst, dead, "tenant {} routed to the dead shard", tenant);
            } else {
                prop_assert_eq!(
                    rerouted, Some(home),
                    "tenant {} moved although its shard survived", tenant
                );
            }
        }
        router.revive(dead);
        for (&tenant, &home) in tenants.iter().zip(&before) {
            prop_assert_eq!(
                router.route(tenant), Some(home),
                "tenant {} not handed back after revive", tenant
            );
        }
    }

    /// The same hand-back through the server API: kill → recover
    /// returns every tenant to its original shard, and recovering a
    /// live shard stays a no-op.
    #[test]
    fn recover_hands_back_dead_shard_tenants(
        seed in 0u64..16,
        shards in 2usize..=6,
        kill_pick in 0usize..6,
    ) {
        let dead = kill_pick % shards;
        let t = trace(11 + seed % 3);
        let mut server = ScheduleServer::new(&t.park, t.budget, server_config(shards))
            .expect("valid park");
        let tenants: Vec<u64> = (0..32).collect();
        let before: Vec<usize> = tenants
            .iter()
            .map(|&t| server.router().route(t).expect("live"))
            .collect();
        server.apply_shard_kill(0.5, dead).expect("kill applies");
        prop_assert!(!server.router().is_alive(dead));
        prop_assert!(server.recover_shard(1.0, dead).expect("recover applies"));
        prop_assert!(server.router().is_alive(dead));
        for (&tenant, &home) in tenants.iter().zip(&before) {
            prop_assert_eq!(server.router().route(tenant), Some(home));
        }
        // Recovering a live shard is a no-op, not an error.
        prop_assert!(!server.recover_shard(1.5, dead).expect("no-op"));
        let report = server.finish();
        prop_assert_eq!(report.summary.kills, 1);
        prop_assert_eq!(report.summary.recoveries, 1);
        prop_assert_eq!(report.archived.len(), 1);
        prop_assert_eq!(report.archived[0].shard, dead);
    }
}

/// Single-accounting through drain → re-route → recover: the union of
/// the final incarnations' outcome lists and the archived dead
/// incarnations' lists holds every admitted task id exactly once.
#[test]
fn task_ids_single_accounted_across_kill_recover() {
    for seed in [11u64, 22, 33] {
        let t = trace(seed);
        // Quotas and rebalancing off: every producer id must reach a
        // shard, which makes "exactly once, all of them" exact.
        let cfg = GatewayConfig {
            server: server_config(4),
            ..GatewayConfig::default()
        };
        let plan = ShardChaosPlan::kill_recover(seed, t.horizon(), 4, 2, t.horizon() * 0.2);
        let report = replay_gateway(&t, &cfg, &plan, 4).expect("replay");
        let server = &report.core.server;
        assert!(
            server.summary.kills >= 1,
            "seed {seed}: plan produced no kill"
        );
        assert_eq!(
            server.summary.kills, server.summary.recoveries,
            "seed {seed}"
        );
        let mut seen = BTreeSet::new();
        for (shard, tasks) in server.shard_tasks.iter().enumerate() {
            for (id, _) in tasks {
                assert!(
                    seen.insert(*id),
                    "seed {seed}: task {id} double-accounted (live shard {shard})"
                );
            }
        }
        for archived in &server.archived {
            for (id, _) in &archived.tasks {
                assert!(
                    seen.insert(*id),
                    "seed {seed}: task {id} in both an archived and a live incarnation"
                );
            }
        }
        for task in &t.tasks {
            assert!(
                seen.contains(&task.id),
                "seed {seed}: task {} vanished",
                task.id
            );
        }
        assert_eq!(
            report.core.summary.admitted,
            t.tasks.len(),
            "seed {seed}: quota-off gateway must admit the whole trace"
        );
    }
}
