//! The incremental replanner's contract, end to end:
//!
//! 1. **Byte-identity vs cold** — replaying any trace under
//!    [`ReplanStrategy::Incremental`] produces decisions, summary, and
//!    energy ledger byte-identical to [`ReplanStrategy::Cold`], over 24
//!    seeds × 3 load factors and both gated admission policies. The
//!    incremental arm may answer gated evaluations from its fingerprint
//!    caches, checkpoint deltas, or same-state probe memo — whichever
//!    path answers, the adopted plans replay the cold pipeline bit for
//!    bit.
//! 2. **Eviction under a tiny capacity** — a cache bound of one entry
//!    forces constant eviction; the replay stays byte-identical (the
//!    cache only ever short-circuits work, never changes results).
//! 3. **Invalid-delta fallback** — when the cheap paths decline (a
//!    missing/mismatched anchor, a wrong-shape warm hint), the replanner
//!    falls back to the full solve bit-exactly.
//! 4. **Fingerprint structure** (proptest) — structurally equal pools
//!    key equal; perturbing any single field (budget, a machine's speed
//!    or power, a task's deadline, breakpoint, or value, a warm cap)
//!    changes the key.

use dsct_ea::accuracy::PwlAccuracy;
use dsct_ea::core::problem::{Instance, Task};
use dsct_ea::core::profile::EnergyProfile;
use dsct_ea::core::replan::{fingerprint, Replanner};
use dsct_ea::core::solver::ApproxSolver;
use dsct_ea::machines::{Machine, MachinePark};
use dsct_ea::online::{replay, AdmissionPolicy, OnlineConfig, ReplanStrategy, ReplayConfig};
use dsct_ea::workload::{
    generate_arrivals, ArrivalConfig, MachineConfig, TaskConfig, ThetaDistribution,
};
use proptest::prelude::*;

fn arrival_config(n: usize, load: f64) -> ArrivalConfig {
    ArrivalConfig {
        tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
        machines: MachineConfig::paper_random(3),
        load,
        deadline_slack: 2.0,
        beta: 0.5,
    }
}

fn replay_config(policy: AdmissionPolicy, replan: ReplanStrategy, cache: usize) -> ReplayConfig {
    ReplayConfig {
        online: OnlineConfig {
            policy,
            replan,
            replan_cache: cache,
            ..OnlineConfig::default()
        },
        ..ReplayConfig::default()
    }
}

#[test]
fn incremental_replays_are_byte_identical_to_cold_across_seeds_and_loads() {
    let policies = [
        AdmissionPolicy::RejectIfInfeasible,
        AdmissionPolicy::DegradeToFit,
    ];
    let mut cached_paths = 0u64;
    for (t, &load) in [0.3, 1.0, 2.5].iter().enumerate() {
        for seed in 0..24u64 {
            let trace = generate_arrivals(&arrival_config(18, load), 7000 * t as u64 + seed)
                .expect("valid config");
            let policy = policies[(seed % 2) as usize];
            let cold = replay(&trace, &replay_config(policy, ReplanStrategy::Cold, 32))
                .expect("zero jitter is valid");
            let inc = replay(
                &trace,
                &replay_config(policy, ReplanStrategy::Incremental, 32),
            )
            .expect("zero jitter is valid");
            assert_eq!(
                cold.decisions, inc.decisions,
                "load {load} seed {seed} {policy:?}: decisions diverged"
            );
            assert_eq!(
                format!("{:?}", cold.summary),
                format!("{:?}", inc.summary),
                "load {load} seed {seed} {policy:?}: summaries diverged"
            );
            assert_eq!(
                cold.ledger, inc.ledger,
                "load {load} seed {seed} {policy:?}: ledgers diverged"
            );
            cached_paths += inc.replan.cache_hits
                + inc.replan.estimates
                + inc.replan.delta_bounds
                + inc.replan.memo_hits;
        }
    }
    // The sweep must actually exercise the cheap paths, not pass
    // vacuously with every request falling back to the full solve.
    assert!(
        cached_paths > 0,
        "no incremental replay ever used a cached/delta path"
    );
}

#[test]
fn a_one_entry_cache_evicts_constantly_and_stays_byte_identical() {
    let trace = generate_arrivals(&arrival_config(24, 1.2), 4711).expect("valid config");
    let cold = replay(
        &trace,
        &replay_config(AdmissionPolicy::DegradeToFit, ReplanStrategy::Cold, 32),
    )
    .expect("zero jitter is valid");
    let tiny = replay(
        &trace,
        &replay_config(
            AdmissionPolicy::DegradeToFit,
            ReplanStrategy::Incremental,
            1,
        ),
    )
    .expect("zero jitter is valid");
    assert_eq!(cold.decisions, tiny.decisions, "decisions diverged");
    assert_eq!(
        format!("{:?}", cold.summary),
        format!("{:?}", tiny.summary),
        "summaries diverged"
    );
    assert_eq!(cold.ledger, tiny.ledger, "ledgers diverged");
    assert!(
        tiny.replan.evictions > 0,
        "a one-entry cache over {} misses must evict",
        tiny.replan.cache_misses
    );
}

fn small_instance() -> Instance {
    let acc = |theta: f64| {
        PwlAccuracy::new(&[(0.0, 0.1), (theta, 0.6), (2.0 * theta, 0.9)]).expect("valid pwl")
    };
    let park = MachinePark::new(vec![
        Machine::new(1.5, 2.0).expect("valid machine"),
        Machine::new(1.0, 1.0).expect("valid machine"),
    ]);
    Instance::new(
        vec![
            Task::new(1.0, acc(0.4)),
            Task::new(1.6, acc(0.7)),
            Task::new(2.2, acc(1.1)),
        ],
        park,
        4.0,
    )
    .expect("valid instance")
}

#[test]
fn invalid_deltas_fall_back_to_the_full_solve_bit_exactly() {
    let inst = small_instance();
    let mut inc = Replanner::new(ApproxSolver::new(), ReplanStrategy::Incremental, 4);
    let mut cold = Replanner::new(ApproxSolver::new(), ReplanStrategy::Cold, 4);

    // A wrong-shape anchor self-clears instead of poisoning deltas …
    inc.anchor(&inst, &[1.0; 3]);
    assert!(
        !inc.has_anchor(),
        "a 3-cap anchor over 2 machines must clear"
    );
    assert!(
        inc.insert_value_bound(&Task::new(0.5, inst.task(0).accuracy.clone()))
            .is_none(),
        "no anchor, no delta"
    );
    // … a missing warm hint declines the estimate …
    assert!(inc.estimate(&inst, None).is_none());
    // … and a wrong-length warm hint declines it too.
    let bad_warm = EnergyProfile::new(vec![0.5; 3]);
    assert!(inc.estimate(&inst, Some(&bad_warm)).is_none());
    assert!(
        inc.stats().fallbacks >= 2,
        "declined cheap paths must be counted as fallbacks"
    );

    // The fallback full solve is bit-identical to the cold pipeline.
    let a = inc.solve(&inst, None);
    let b = cold.solve(&inst, None);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "incremental fallback drifted from the cold solve"
    );
    // And a repeat of the same residual state replays from the cache,
    // again bit-identically.
    let c = inc.solve(&inst, None);
    assert_eq!(format!("{a:?}"), format!("{c:?}"));
    assert_eq!(inc.stats().cache_hits, 1);
}

/// Parameters that fully determine a small instance + warm hint.
#[derive(Debug, Clone)]
struct PoolParams {
    budget: f64,
    machines: Vec<(f64, f64)>,
    tasks: Vec<(f64, f64, f64)>,
    warm: Vec<f64>,
}

fn build(p: &PoolParams) -> (Instance, EnergyProfile) {
    let park = MachinePark::new(
        p.machines
            .iter()
            .map(|&(s, w)| Machine::new(s, w).expect("valid machine"))
            .collect(),
    );
    // `Instance::new` insists on EDF order; the stable sort keeps two
    // builds of the same params byte-identical.
    let mut sorted = p.tasks.clone();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let tasks = sorted
        .iter()
        .map(|&(d, f1, a1)| {
            Task::new(
                d,
                PwlAccuracy::new(&[(0.0, 0.0), (f1, a1)]).expect("valid pwl"),
            )
        })
        .collect();
    let inst = Instance::new(tasks, park, p.budget).expect("valid instance");
    (inst, EnergyProfile::new(p.warm.clone()))
}

fn pool_params() -> impl Strategy<Value = PoolParams> {
    (
        0.5f64..20.0,
        proptest::collection::vec((0.5f64..2.0, 0.5f64..2.0), 1..4),
        proptest::collection::vec((0.2f64..5.0, 0.1f64..3.0, 0.1f64..1.0), 1..5),
        // Oversample the warm hint at the max machine count and trim to
        // fit below — the machine count isn't known until sampling time.
        proptest::collection::vec(0.0f64..2.0, 3..4),
    )
        .prop_map(|(budget, machines, tasks, mut warm)| {
            warm.truncate(machines.len());
            PoolParams {
                budget,
                machines,
                tasks,
                warm,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn structurally_equal_pools_fingerprint_equal(p in pool_params()) {
        let (a, warm_a) = build(&p);
        let (b, warm_b) = build(&p);
        prop_assert_eq!(fingerprint(&a, None), fingerprint(&b, None));
        prop_assert_eq!(
            fingerprint(&a, Some(&warm_a)),
            fingerprint(&b, Some(&warm_b))
        );
        // The warm hint is part of the key.
        prop_assert_ne!(fingerprint(&a, None), fingerprint(&a, Some(&warm_a)));
    }

    #[test]
    fn any_single_field_perturbation_changes_the_key(
        p in pool_params(),
        which in 0usize..7,
        seed in 0usize..8,
    ) {
        let (base, warm) = build(&p);
        let key = fingerprint(&base, Some(&warm));
        let mut q = p.clone();
        let bump = |v: f64| v + 1e-9 + v.abs() * 1e-9;
        let mi = seed % q.machines.len();
        let ti = seed % q.tasks.len();
        match which {
            0 => q.budget = bump(q.budget),
            1 => q.machines[mi].0 = bump(q.machines[mi].0),
            2 => q.machines[mi].1 = bump(q.machines[mi].1),
            3 => q.tasks[ti].0 = bump(q.tasks[ti].0),
            4 => q.tasks[ti].1 = bump(q.tasks[ti].1),
            5 => q.tasks[ti].2 = bump(q.tasks[ti].2),
            _ => q.warm[mi] = bump(q.warm[mi]),
        }
        let (pert, pert_warm) = build(&q);
        prop_assert!(
            key != fingerprint(&pert, Some(&pert_warm)),
            "perturbation {} at machine {} / task {} did not change the key",
            which, mi, ti
        );
    }
}
