//! Cross-crate integration of the two extensions: the discrete-event
//! executor and the renewable-supply solver, exercised on generated
//! workloads.

use dsct_core::renewable::{solve_renewable, supply_violation, EnergySupply};
use dsct_core::schedule::ScheduleKind;
use dsct_core::solver::ApproxSolver;
use dsct_exec::{execute, ExecutionConfig, OverrunPolicy};
use dsct_lp::SolveOptions;
use dsct_workload::{generate, InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};
use proptest::prelude::*;

fn config(n: usize, m: usize, rho: f64, beta: f64) -> InstanceConfig {
    InstanceConfig {
        tasks: TaskConfig::paper(n, ThetaDistribution::Uniform { min: 0.2, max: 2.0 }),
        machines: MachineConfig::paper_random(m),
        rho,
        beta,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zero-jitter execution realizes exactly the planned accuracy and
    /// energy on any generated instance.
    #[test]
    fn executor_reproduces_plans(seed in 0u64..500, n in 2usize..30, m in 1usize..4) {
        let inst = generate(&config(n, m, 0.3, 0.5), seed);
        let plan = ApproxSolver::new().solve_typed(&inst);
        let trace = execute(&inst, &plan.schedule, &ExecutionConfig::default());
        prop_assert!((trace.realized_accuracy - plan.total_accuracy).abs() < 1e-7);
        prop_assert!((trace.realized_energy - plan.schedule.energy(&inst)).abs() < 1e-7);
        prop_assert_eq!(trace.deadline_misses(), 0);
    }

    /// Under jitter with the compress policy, deadlines are never missed
    /// and realized accuracy never exceeds the plan (work can only be cut
    /// or fall short... fast machines can finish early but never exceed
    /// the planned work target).
    #[test]
    fn compress_policy_is_deadline_safe(seed in 0u64..300, jitter in 0.05f64..0.45) {
        let inst = generate(&config(15, 3, 0.2, 0.5), seed);
        let plan = ApproxSolver::new().solve_typed(&inst);
        let trace = execute(&inst, &plan.schedule, &ExecutionConfig {
            speed_jitter: jitter,
            seed: seed ^ 0x5a5a,
            overrun: OverrunPolicy::Compress,
        });
        prop_assert_eq!(trace.deadline_misses(), 0);
        prop_assert!(trace.realized_accuracy <= plan.total_accuracy + 1e-7);
        for t in &trace.tasks {
            prop_assert!(t.work >= 0.0 && t.energy >= 0.0);
        }
    }

    /// The windowed (renewable) fractional optimum is sandwiched between
    /// zero supply and the unconstrained-arrival optimum with the same
    /// total energy, and all its schedules respect the windows.
    #[test]
    fn renewable_is_bounded_by_constant_supply(seed in 0u64..100) {
        let inst = generate(&config(8, 2, 0.4, 0.5), seed);
        let total = inst.budget();
        let upfront = EnergySupply::constant(total).expect("valid");
        let ramp = EnergySupply::harvest(0.0, total / inst.d_max(), inst.d_max()).expect("valid");
        let a = solve_renewable(&inst, &upfront, &SolveOptions::default()).expect("solves");
        let b = solve_renewable(&inst, &ramp, &SolveOptions::default()).expect("solves");
        prop_assert!(b.fractional.total_accuracy <= a.fractional.total_accuracy + 1e-6);
        for sol in [&a, &b] {
            prop_assert!(sol.approx.total_accuracy <= sol.fractional.total_accuracy + 1e-7);
        }
        prop_assert!(supply_violation(&inst, &ramp, &b.fractional.schedule) < 1e-6);
        prop_assert!(supply_violation(&inst, &ramp, &b.approx.schedule) < 1e-6);
        let relaxed = inst.with_budget(total).expect("valid");
        prop_assert!(b.approx.schedule.validate(&relaxed, ScheduleKind::Integral).is_ok());
    }
}

#[test]
fn executed_trace_is_replayable_and_serializable() {
    let inst = generate(&config(10, 2, 0.3, 0.5), 7);
    let plan = ApproxSolver::new().solve_typed(&inst);
    let cfg = ExecutionConfig {
        speed_jitter: 0.25,
        seed: 99,
        overrun: OverrunPolicy::Compress,
    };
    let a = execute(&inst, &plan.schedule, &cfg);
    let b = execute(&inst, &plan.schedule, &cfg);
    let ja = serde_json::to_string(&a).expect("serializable");
    let jb = serde_json::to_string(&b).expect("serializable");
    assert_eq!(ja, jb, "execution must replay identically");
    let back: dsct_exec::ExecutionTrace = serde_json::from_str(&ja).expect("round-trips");
    assert_eq!(back.tasks.len(), a.tasks.len());
}
