//! The chaos determinism contract, as CI runs it: fault-injected online
//! replays must serialize to byte-identical summaries across solver
//! parallelism {1, 2, 8}, for every chaos seed under test. The
//! `chaos-suite` CI job runs this binary twice — `--test-threads=1` and
//! the harness default — so harness threading is covered by the job
//! matrix, not by code here.
//!
//! Seeds default to {11, 22, 33} and can be overridden with
//! `DSCT_CHAOS_SEEDS=5,7,9` to widen the sweep without recompiling.

use dsct_ea::chaos::{chaos_replay, ChaosConfig, ChaosPlan};
use dsct_ea::online::OnlineConfig;
use dsct_ea::workload::{
    generate_arrivals, ArrivalConfig, ArrivalTrace, MachineConfig, TaskConfig, ThetaDistribution,
};

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("DSCT_CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|v| {
                v.trim()
                    .parse::<u64>()
                    .unwrap_or_else(|e| panic!("DSCT_CHAOS_SEEDS entry {v:?}: {e}"))
            })
            .collect(),
        Err(_) => vec![11, 22, 33],
    }
}

fn trace(seed: u64) -> ArrivalTrace {
    let cfg = ArrivalConfig {
        tasks: TaskConfig::paper(30, ThetaDistribution::Uniform { min: 0.1, max: 2.0 }),
        machines: MachineConfig::paper_random(3),
        load: 1.0,
        deadline_slack: 2.0,
        beta: 0.5,
    };
    generate_arrivals(&cfg, seed).expect("validated config")
}

fn summary_json(t: &ArrivalTrace, plan: &ChaosPlan, solver_parallelism: usize) -> String {
    let cfg = OnlineConfig {
        solver_parallelism,
        ..OnlineConfig::default()
    };
    let r = chaos_replay(t, &cfg, plan).expect("valid replay config");
    serde_json::to_string(&r.summary).expect("serializable summary")
}

#[test]
fn chaos_replays_are_byte_identical_across_solver_parallelism() {
    for chaos_seed in chaos_seeds() {
        let t = trace(chaos_seed);
        let plan = ChaosPlan::generate(
            &ChaosConfig::default(),
            chaos_seed,
            t.horizon(),
            t.park.len(),
            t.budget,
        );
        let baseline = summary_json(&t, &plan, 1);
        for par in [2, 8] {
            assert_eq!(
                baseline,
                summary_json(&t, &plan, par),
                "chaos seed {chaos_seed}: solver parallelism {par} changed the replay"
            );
        }
    }
}

#[test]
fn repeated_chaos_replays_are_byte_identical() {
    // Same process, fresh service each time: no hidden global state may
    // leak between replays.
    for chaos_seed in chaos_seeds() {
        let t = trace(chaos_seed);
        let plan = ChaosPlan::generate(
            &ChaosConfig::default(),
            chaos_seed,
            t.horizon(),
            t.park.len(),
            t.budget,
        );
        assert_eq!(
            summary_json(&t, &plan, 0),
            summary_json(&t, &plan, 0),
            "chaos seed {chaos_seed}: a repeated replay drifted"
        );
    }
}

#[test]
fn chaos_plans_are_byte_identical_across_generations() {
    for chaos_seed in chaos_seeds() {
        let t = trace(chaos_seed);
        let gen = || {
            serde_json::to_string(&ChaosPlan::generate(
                &ChaosConfig::default(),
                chaos_seed,
                t.horizon(),
                t.park.len(),
                t.budget,
            ))
            .expect("serializable plan")
        };
        assert_eq!(
            gen(),
            gen(),
            "chaos seed {chaos_seed}: plan generation drifted"
        );
    }
}
