//! Ground-truth validation of the combinatorial fractional solver: on
//! randomized instances, `DSCT-EA-FR-OPT` must match the LP optimum of
//! DSCT-EA-FR computed by the simplex solver (the paper's Theorem 2 claims
//! exactness via KKT conditions).

use dsct_core::schedule::ScheduleKind;
use dsct_core::solver::{FrOptSolver, LpSolver};
use dsct_lp::Status;
use dsct_workload::{InstanceConfig, MachineConfig, TaskConfig, ThetaDistribution};

fn check_instance(cfg: &InstanceConfig, seed: u64, tol_rel: f64) {
    let inst = dsct_workload::generate(cfg, seed);
    let lp = LpSolver::new().solve_typed(&inst).expect("LP builds");
    assert_eq!(lp.status, Status::Optimal, "seed {seed}");
    let fr = FrOptSolver::new().solve_typed(&inst);
    fr.schedule
        .validate(&inst, ScheduleKind::Fractional)
        .unwrap_or_else(|e| panic!("seed {seed}: infeasible FR solution {e:?}"));

    let scale = inst.total_max_accuracy().max(1.0);
    let gap = lp.total_accuracy - fr.total_accuracy;
    assert!(
        gap <= tol_rel * scale,
        "seed {seed}: FR-OPT {:.9} below LP optimum {:.9} (gap {gap:.3e}, n={}, m={}, beta={:.2}, rho={:.2})",
        fr.total_accuracy,
        lp.total_accuracy,
        inst.num_tasks(),
        inst.num_machines(),
        inst.beta(),
        inst.rho(),
    );
    // And FR-OPT must never *exceed* a valid optimum (would indicate an
    // infeasibility the validator missed).
    assert!(
        fr.total_accuracy <= lp.total_accuracy + tol_rel * scale,
        "seed {seed}: FR-OPT {} above LP optimum {}",
        fr.total_accuracy,
        lp.total_accuracy
    );
}

fn sweep(
    theta: ThetaDistribution,
    rho: f64,
    beta: f64,
    n: usize,
    m: usize,
    seeds: std::ops::Range<u64>,
) {
    let cfg = InstanceConfig {
        tasks: TaskConfig::paper(n, theta),
        machines: MachineConfig::paper_random(m),
        rho,
        beta,
    };
    for seed in seeds {
        check_instance(&cfg, seed, 2e-4);
    }
}

#[test]
fn matches_lp_on_small_homogeneous_tasks() {
    sweep(ThetaDistribution::Fixed(0.5), 0.5, 0.5, 4, 2, 0..15);
}

#[test]
fn matches_lp_on_heterogeneous_tasks() {
    sweep(
        ThetaDistribution::Uniform { min: 0.1, max: 2.0 },
        0.35,
        0.5,
        6,
        3,
        0..15,
    );
}

#[test]
fn matches_lp_under_tight_budget() {
    sweep(
        ThetaDistribution::Uniform { min: 0.1, max: 4.9 },
        0.5,
        0.15,
        5,
        3,
        0..15,
    );
}

#[test]
fn matches_lp_under_tight_deadlines() {
    sweep(
        ThetaDistribution::Uniform { min: 0.1, max: 4.9 },
        0.05,
        0.6,
        6,
        2,
        0..15,
    );
}

#[test]
fn matches_lp_with_early_efficient_tasks() {
    sweep(
        ThetaDistribution::EarlySplit {
            fraction: 0.3,
            early: (4.0, 4.9),
            late: (0.1, 1.0),
        },
        0.05,
        0.4,
        8,
        2,
        0..15,
    );
}

#[test]
fn matches_lp_on_larger_mixed_instances() {
    sweep(
        ThetaDistribution::Uniform { min: 0.1, max: 3.0 },
        0.2,
        0.3,
        12,
        4,
        0..8,
    );
}

/// Broad stress sweep across regimes (slow; run with `--ignored`).
#[test]
#[ignore = "broad stress sweep; run explicitly with --ignored"]
fn stress_many_seeds() {
    let regimes: &[(ThetaDistribution, f64, f64, usize, usize)] = &[
        (ThetaDistribution::Fixed(0.1), 1.0, 0.3, 10, 2),
        (
            ThetaDistribution::Uniform { min: 0.1, max: 4.9 },
            0.35,
            0.5,
            10,
            5,
        ),
        (
            ThetaDistribution::Uniform { min: 0.1, max: 4.9 },
            0.01,
            0.4,
            10,
            2,
        ),
        (
            ThetaDistribution::EarlySplit {
                fraction: 0.3,
                early: (4.0, 4.9),
                late: (0.1, 1.0),
            },
            0.01,
            0.2,
            15,
            3,
        ),
        (
            ThetaDistribution::Uniform { min: 0.5, max: 2.0 },
            0.1,
            0.8,
            20,
            4,
        ),
    ];
    for (k, (theta, rho, beta, n, m)) in regimes.iter().enumerate() {
        sweep(
            *theta,
            *rho,
            *beta,
            *n,
            *m,
            (100 * k as u64)..(100 * k as u64 + 40),
        );
    }
}
